// Package spice is a small transistor-level circuit simulator standing in
// for the commercial simulator (Cadence Spectre) used by the paper's
// experiments. It implements modified nodal analysis (MNA) with:
//
//   - Newton–Raphson DC operating-point solves, with .nodeset seeding and a
//     gmin-stepping fallback for hard-to-converge circuits;
//   - fixed-step transient analysis with backward-Euler or trapezoidal
//     integration and threshold-crossing delay measurement;
//   - small-signal AC analysis (complex MNA) with magnitude/phase and
//     unity-gain-frequency extraction;
//   - square-law MOSFETs, diodes, R/C/L, independent V/I sources and VCCS;
//   - a SPICE-style netlist parser and runner (ParseNetlist, Netlist.Run).
//
// The simulator is the "expensive sampling engine" of the reproduction: each
// Monte Carlo sampling point of the SRAM experiments is one DC + transient
// run of a read-path netlist whose device parameters are perturbed by
// internal/variation, and each SpiceOpAmp sample is a DC + AC run.
package spice

import (
	"fmt"
)

// NodeID identifies a circuit node. Ground is the constant Ground (-1) and
// carries no equation.
type NodeID int

// Ground is the reference node.
const Ground NodeID = -1

// Circuit is a netlist under construction.
type Circuit struct {
	nodeNames []string
	nodeIndex map[string]NodeID
	devices   []device
	// branchCount tracks extra MNA branch-current unknowns (one per voltage
	// source and one per inductor).
	branchCount int
	// vsrcBranches[i] is the branch ordinal of the i-th voltage source, for
	// Solution.SourceCurrent.
	vsrcBranches []int
	// nodesets seed the DC Newton iteration (SPICE .nodeset): they bias the
	// solver toward one operating point of a multi-stable circuit without
	// constraining the converged solution.
	nodesets map[NodeID]float64
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{nodeIndex: make(map[string]NodeID)}
}

// Node returns the node with the given name, creating it on first use.
// The name "0" and "gnd" map to Ground.
func (c *Circuit) Node(name string) NodeID {
	if name == "0" || name == "gnd" {
		return Ground
	}
	if id, ok := c.nodeIndex[name]; ok {
		return id
	}
	id := NodeID(len(c.nodeNames))
	c.nodeNames = append(c.nodeNames, name)
	c.nodeIndex[name] = id
	return id
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// NodeName returns the name of a node (for diagnostics).
func (c *Circuit) NodeName(id NodeID) string {
	if id == Ground {
		return "0"
	}
	return c.nodeNames[id]
}

// unknowns returns the size of the MNA system: node voltages plus the
// branch currents of voltage sources and inductors.
func (c *Circuit) unknowns() int { return len(c.nodeNames) + c.branchCount }

// NodeSet seeds the DC Newton iteration with an initial voltage guess for a
// node (the SPICE .nodeset directive). Use it to select among multiple
// stable operating points, e.g. in latches or feedback loops.
func (c *Circuit) NodeSet(n NodeID, v float64) {
	if n == Ground {
		return
	}
	if c.nodesets == nil {
		c.nodesets = make(map[NodeID]float64)
	}
	c.nodesets[n] = v
}

// Waveform describes a time-dependent source value.
type Waveform interface {
	// At returns the source value at time t (t = 0 for DC analyses).
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// Pulse is the classic SPICE pulse waveform.
type Pulse struct {
	V0, V1                   float64 // initial and pulsed value
	Delay, Rise, Fall, Width float64
	Period                   float64 // 0 means single pulse
}

// At implements Waveform.
func (p Pulse) At(t float64) float64 {
	if t < p.Delay {
		return p.V0
	}
	tt := t - p.Delay
	if p.Period > 0 {
		for tt >= p.Period {
			tt -= p.Period
		}
	}
	switch {
	case tt < p.Rise:
		return p.V0 + (p.V1-p.V0)*tt/p.Rise
	case tt < p.Rise+p.Width:
		return p.V1
	case tt < p.Rise+p.Width+p.Fall:
		return p.V1 + (p.V0-p.V1)*(tt-p.Rise-p.Width)/p.Fall
	default:
		return p.V0
	}
}

// stampCtx carries the MNA system being assembled for one Newton iteration.
type stampCtx struct {
	a *sysMatrix
	b []float64
	// x is the current solution estimate (node voltages then branch
	// currents); nil during the very first iteration bootstrap.
	x []float64
	// t is the analysis time (0 for DC).
	t float64
	// dt is the timestep (0 for DC; transient companion models use it).
	dt float64
	// xPrev is the converged solution of the previous timestep (nil in DC).
	xPrev []float64
	// nNodes is the node count, used to locate branch-current unknowns.
	nNodes int
	// trap selects trapezoidal companion models for reactive devices
	// (false = backward Euler).
	trap bool
}

// v returns the estimated voltage of a node.
func (ctx *stampCtx) v(n NodeID) float64 {
	if n == Ground || ctx.x == nil {
		return 0
	}
	return ctx.x[n]
}

// vPrev returns the previous-timestep voltage of a node.
func (ctx *stampCtx) vPrev(n NodeID) float64 {
	if n == Ground || ctx.xPrev == nil {
		return 0
	}
	return ctx.xPrev[n]
}

// addA accumulates into the system matrix, skipping ground rows/columns.
func (ctx *stampCtx) addA(i, j NodeID, v float64) {
	if i == Ground || j == Ground {
		return
	}
	ctx.a.add(int(i), int(j), v)
}

// addB accumulates into the right-hand side.
func (ctx *stampCtx) addB(i NodeID, v float64) {
	if i == Ground {
		return
	}
	ctx.b[i] += v
}

// device is anything that can stamp itself into the MNA system.
type device interface {
	stamp(ctx *stampCtx)
	name() string
}

// sysMatrix is a dense square matrix with an add-accumulate primitive.
// MNA systems in this repository are small (tens of nodes), so dense LU is
// both simple and fast.
type sysMatrix struct {
	n    int
	data []float64
}

func newSysMatrix(n int) *sysMatrix {
	return &sysMatrix{n: n, data: make([]float64, n*n)}
}

func (m *sysMatrix) add(i, j int, v float64) { m.data[i*m.n+j] += v }

func (m *sysMatrix) reset() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// errNoConverge reports a failed Newton solve with context.
func errNoConverge(kind string, iter int, worst float64) error {
	return fmt.Errorf("spice: %s analysis did not converge after %d iterations (worst update %.3g V)", kind, iter, worst)
}

// PWL is a piecewise-linear waveform defined by (time, value) breakpoints in
// ascending time order. Before the first point it holds the first value;
// after the last it holds the last.
type PWL struct {
	Times, Values []float64
}

// At implements Waveform by linear interpolation between breakpoints.
func (p PWL) At(t float64) float64 {
	n := len(p.Times)
	if n == 0 {
		return 0
	}
	if t <= p.Times[0] {
		return p.Values[0]
	}
	if t >= p.Times[n-1] {
		return p.Values[n-1]
	}
	// Binary search for the bracketing segment.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.Times[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (t - p.Times[lo]) / (p.Times[hi] - p.Times[lo])
	return p.Values[lo] + frac*(p.Values[hi]-p.Values[lo])
}
