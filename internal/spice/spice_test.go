package spice

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVoltageDivider(t *testing.T) {
	c := New()
	in, mid := c.Node("in"), c.Node("mid")
	c.AddVoltageSource("V1", in, Ground, DC(10))
	c.AddResistor("R1", in, mid, 1e3)
	c.AddResistor("R2", mid, Ground, 3e3)
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Voltage(mid); math.Abs(got-7.5) > 1e-6 {
		t.Errorf("divider mid = %gV, want 7.5V", got)
	}
	// Source current: 10V across 4k = 2.5mA flowing out of the source.
	if got := sol.SourceCurrent(0); math.Abs(got+2.5e-3) > 1e-8 {
		t.Errorf("source current = %g, want -2.5mA", got)
	}
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.AddCurrentSource("I1", Ground, n, DC(1e-3))
	c.AddResistor("R1", n, Ground, 2e3)
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Voltage(n); math.Abs(got-2.0) > 1e-6 {
		t.Errorf("V(n) = %g, want 2.0", got)
	}
}

func TestVCCS(t *testing.T) {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.AddVoltageSource("V1", in, Ground, DC(0.5))
	c.AddVCCS("G1", out, Ground, in, Ground, 2e-3) // gm·v(in) drawn out of node out
	c.AddResistor("RL", out, Ground, 10e3)
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	// Output current 1mA pulled from out through RL: V(out) = −gm·vin·RL = −10V.
	if got := sol.Voltage(out); math.Abs(got+10.0) > 1e-5 {
		t.Errorf("V(out) = %g, want -10", got)
	}
}

func TestDiodeClamp(t *testing.T) {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.AddVoltageSource("V1", in, Ground, DC(5))
	c.AddResistor("R1", in, out, 1e3)
	c.AddDiode("D1", out, Ground, 1e-14)
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	vd := sol.Voltage(out)
	if vd < 0.5 || vd > 0.8 {
		t.Errorf("diode forward drop %gV outside [0.5, 0.8]", vd)
	}
	// KCL consistency: resistor current equals diode current.
	ir := (5 - vd) / 1e3
	id := 1e-14 * (math.Exp(vd/0.025852) - 1)
	if math.Abs(ir-id)/ir > 1e-3 {
		t.Errorf("KCL violated: iR=%g iD=%g", ir, id)
	}
}

func TestNMOSSaturationCurrent(t *testing.T) {
	// NMOS with VGS=1.0, VT=0.4, Beta=200µ, λ=0: ID = β/2·(0.6)² = 36µA.
	c := New()
	vd, vg := c.Node("d"), c.Node("g")
	c.AddVoltageSource("VD", vd, Ground, DC(1.2))
	c.AddVoltageSource("VG", vg, Ground, DC(1.0))
	c.AddMOSFET("M1", vd, vg, Ground, MOSParams{Type: NMOS, VT: 0.4, Beta: 200e-6})
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	// Drain source current = −ID (current flows into the drain supply).
	id := -sol.SourceCurrent(0)
	want := 0.5 * 200e-6 * 0.36
	if math.Abs(id-want)/want > 1e-3 {
		t.Errorf("ID = %g, want %g", id, want)
	}
}

func TestNMOSTriodeCurrent(t *testing.T) {
	// VGS=1.2, VT=0.4, VDS=0.2 < VOV=0.8 → triode:
	// ID = β(VOV·VDS − VDS²/2) = 200µ·(0.16−0.02) = 28µA.
	c := New()
	vd, vg := c.Node("d"), c.Node("g")
	c.AddVoltageSource("VD", vd, Ground, DC(0.2))
	c.AddVoltageSource("VG", vg, Ground, DC(1.2))
	c.AddMOSFET("M1", vd, vg, Ground, MOSParams{Type: NMOS, VT: 0.4, Beta: 200e-6})
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	id := -sol.SourceCurrent(0)
	want := 200e-6 * (0.8*0.2 - 0.02)
	if math.Abs(id-want)/want > 1e-3 {
		t.Errorf("ID = %g, want %g", id, want)
	}
}

func TestCMOSInverterVTC(t *testing.T) {
	// A balanced CMOS inverter: output high for low input, low for high
	// input, and near VDD/2 at the switching threshold.
	build := func(vin float64) (*Circuit, NodeID) {
		c := New()
		vdd, in, out := c.Node("vdd"), c.Node("in"), c.Node("out")
		c.AddVoltageSource("VDD", vdd, Ground, DC(1.2))
		c.AddVoltageSource("VIN", in, Ground, DC(vin))
		c.AddMOSFET("MP", out, in, vdd, MOSParams{Type: PMOS, VT: 0.4, Beta: 250e-6, Lambda: 0.05})
		c.AddMOSFET("MN", out, in, Ground, MOSParams{Type: NMOS, VT: 0.4, Beta: 250e-6, Lambda: 0.05})
		// Light load to give the output a DC path in cutoff corners.
		c.AddResistor("RL", out, Ground, 1e9)
		return c, out
	}
	c, out := build(0)
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage(out); v < 1.1 {
		t.Errorf("V(out) = %g for low input, want ≈1.2", v)
	}
	c, out = build(1.2)
	sol, err = c.DC()
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage(out); v > 0.1 {
		t.Errorf("V(out) = %g for high input, want ≈0", v)
	}
	c, out = build(0.6)
	sol, err = c.DC()
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage(out); math.Abs(v-0.6) > 0.15 {
		t.Errorf("V(out) = %g at threshold, want ≈0.6 for balanced inverter", v)
	}
}

func TestRCTransientStepResponse(t *testing.T) {
	// R=1k, C=1µ: τ=1ms. Step 0→1V at t=0 (via pulse with tiny rise).
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.AddVoltageSource("V1", in, Ground, Pulse{V0: 0, V1: 1, Delay: 0, Rise: 1e-9, Fall: 1e-9, Width: 1})
	c.AddResistor("R1", in, out, 1e3)
	c.AddCapacitor("C1", out, Ground, 1e-6)
	tr, err := c.Transient(5e-3, 5e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Compare with v(t) = 1 − e^{−t/τ} at a few probe times. Backward Euler
	// with 1000 steps per τ is accurate to ~0.1%.
	for _, probe := range []float64{0.5e-3, 1e-3, 2e-3, 4e-3} {
		idx := int(probe / 5e-6)
		got := tr.At(out, idx)
		want := 1 - math.Exp(-tr.Times[idx]/1e-3)
		if math.Abs(got-want) > 5e-3 {
			t.Errorf("v(%.1fms) = %g, want %g", probe*1e3, got, want)
		}
	}
	// 63.2% crossing at ≈ τ.
	tc, err := tr.CrossingTime(out, 1-math.Exp(-1), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tc-1e-3) > 2e-5 {
		t.Errorf("τ crossing at %g, want 1ms", tc)
	}
}

func TestInverterPropagationDelay(t *testing.T) {
	// CMOS inverter driving a load cap: the output must fall after the
	// input rises, with a measurable positive delay.
	c := New()
	vdd, in, out := c.Node("vdd"), c.Node("in"), c.Node("out")
	c.AddVoltageSource("VDD", vdd, Ground, DC(1.2))
	c.AddVoltageSource("VIN", in, Ground, Pulse{V0: 0, V1: 1.2, Delay: 1e-10, Rise: 2e-11, Fall: 2e-11, Width: 1e-8})
	c.AddMOSFET("MP", out, in, vdd, MOSParams{Type: PMOS, VT: 0.4, Beta: 250e-6, Lambda: 0.05})
	c.AddMOSFET("MN", out, in, Ground, MOSParams{Type: NMOS, VT: 0.4, Beta: 500e-6, Lambda: 0.05})
	c.AddCapacitor("CL", out, Ground, 10e-15)
	tr, err := c.Transient(2e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	tIn, err := tr.CrossingTime(in, 0.6, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	tOut, err := tr.CrossingTime(out, 0.6, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	delay := tOut - tIn
	if delay <= 0 || delay > 1e-9 {
		t.Errorf("propagation delay %g s outside plausible (0, 1ns]", delay)
	}
	// Output starts high and ends low.
	if v0 := tr.At(out, 0); v0 < 1.1 {
		t.Errorf("initial output %g, want ≈1.2", v0)
	}
	last := tr.At(out, len(tr.Times)-1)
	if last > 0.1 {
		t.Errorf("final output %g, want ≈0", last)
	}
}

func TestMOSFETSourceDrainSwap(t *testing.T) {
	// Pass transistor conducting "backwards" (drain below source) must still
	// conduct: tie gate high, drive former drain low.
	c := New()
	g, a, b := c.Node("g"), c.Node("a"), c.Node("b")
	c.AddVoltageSource("VG", g, Ground, DC(1.2))
	c.AddVoltageSource("VA", a, Ground, DC(0))
	c.AddCurrentSource("IB", Ground, b, DC(10e-6)) // push 10µA into b
	c.AddMOSFET("M1", a, g, b, MOSParams{Type: NMOS, VT: 0.4, Beta: 500e-6})
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	// The transistor must sink the 10µA with a small vb.
	if vb := sol.Voltage(b); vb < 0 || vb > 0.2 {
		t.Errorf("pass-gate V(b) = %g, want small positive", vb)
	}
}

func TestPulseWaveform(t *testing.T) {
	p := Pulse{V0: 0, V1: 1, Delay: 1, Rise: 1, Fall: 1, Width: 2, Period: 10}
	cases := []struct{ t, want float64 }{
		{0, 0}, {1, 0}, {1.5, 0.5}, {2, 1}, {3.5, 1}, {4.5, 0.5}, {5, 0},
		{11.5, 0.5}, // periodic repeat
	}
	for _, tc := range cases {
		if got := p.At(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Pulse.At(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
}

func TestNodeNaming(t *testing.T) {
	c := New()
	if c.Node("0") != Ground || c.Node("gnd") != Ground {
		t.Error("ground aliases must map to Ground")
	}
	a := c.Node("a")
	if c.Node("a") != a {
		t.Error("repeated Node lookups must return the same id")
	}
	if c.NodeName(a) != "a" || c.NodeName(Ground) != "0" {
		t.Error("NodeName mismatch")
	}
	if c.NumNodes() != 1 {
		t.Errorf("NumNodes = %d, want 1", c.NumNodes())
	}
}

func TestEmptyCircuitErrors(t *testing.T) {
	if _, err := New().DC(); err == nil {
		t.Error("empty circuit DC must error")
	}
}

func TestTransientInvalidWindow(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.AddCurrentSource("I", Ground, n, DC(1e-3))
	c.AddResistor("R", n, Ground, 1e3)
	if _, err := c.Transient(0, 1e-6); err == nil {
		t.Error("stop=0 must error")
	}
	if _, err := c.Transient(1e-3, 2e-3); err == nil {
		t.Error("step > stop must error")
	}
}

func TestCrossingTimeNoCross(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.AddCurrentSource("I", Ground, n, DC(1e-3))
	c.AddResistor("R", n, Ground, 1e3)
	tr, err := c.Transient(1e-6, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.CrossingTime(n, 100, true, 0); err == nil {
		t.Error("impossible crossing must error")
	}
}

func TestDevicePanics(t *testing.T) {
	c := New()
	a := c.Node("a")
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"resistor", func() { c.AddResistor("R", a, Ground, 0) }},
		{"capacitor", func() { c.AddCapacitor("C", a, Ground, -1) }},
		{"mosfet", func() { c.AddMOSFET("M", a, a, Ground, MOSParams{Beta: 0}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestACCurrentSourceStimulus(t *testing.T) {
	// AC current of 1 A into a 50 Ω resistor reads 50 V of transfer
	// impedance at the node.
	c := New()
	n := c.Node("n")
	c.AddCurrentSource("I1", Ground, n, DC(0))
	c.AddResistor("R1", n, Ground, 50)
	if err := c.SetACMagnitude("I1", 1); err != nil {
		t.Fatal(err)
	}
	res, err := c.AC([]float64{1e3})
	if err != nil {
		t.Fatal(err)
	}
	// The global gmin leak shifts the impedance by ~R²·gmin.
	if got := res.Mag(n, 0); math.Abs(got-50) > 1e-6 {
		t.Errorf("|Z| = %g, want 50", got)
	}
	// Ground queries are exactly zero.
	if res.Mag(Ground, 0) != 0 || res.Voltage(Ground, 0) != 0 {
		t.Error("ground AC voltage must be 0")
	}
}

func TestTranResultVoltageWaveform(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.AddCurrentSource("I", Ground, n, DC(1e-3))
	c.AddResistor("R", n, Ground, 1e3)
	tr, err := c.Transient(1e-6, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	w := tr.Voltage(n)
	if len(w) != len(tr.Times) {
		t.Fatalf("waveform length %d, want %d", len(w), len(tr.Times))
	}
	for i := range w {
		if w[i] != tr.At(n, i) {
			t.Fatal("Voltage disagrees with At")
		}
	}
	g := tr.Voltage(Ground)
	for _, v := range g {
		if v != 0 {
			t.Fatal("ground waveform must be 0")
		}
	}
	if tr.At(Ground, 0) != 0 {
		t.Error("ground At must be 0")
	}
}

func TestSolutionVoltageGround(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.AddVoltageSource("V", n, Ground, DC(1))
	c.AddResistor("R", n, Ground, 1e3)
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Voltage(Ground) != 0 {
		t.Error("ground DC voltage must be 0")
	}
}

func TestOPReport(t *testing.T) {
	c := New()
	vd, vg, out := c.Node("d"), c.Node("g"), c.Node("out")
	c.AddVoltageSource("VD", vd, Ground, DC(1.2))
	c.AddVoltageSource("VG", vg, Ground, DC(1.0))
	c.AddMOSFET("M1", vd, vg, Ground, MOSParams{Type: NMOS, VT: 0.4, Beta: 200e-6})
	c.AddResistor("R1", vd, out, 1e3)
	c.AddDiode("D1", out, Ground, 1e-14)
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	ops := c.OPReport(sol)
	if len(ops) != 2 {
		t.Fatalf("got %d entries, want 2", len(ops))
	}
	// Sorted by name: D1 then M1.
	if ops[0].Name != "D1" || ops[1].Name != "M1" {
		t.Fatalf("order %v", []string{ops[0].Name, ops[1].Name})
	}
	m := ops[1]
	if m.Region != "saturation" {
		t.Errorf("M1 region %q, want saturation", m.Region)
	}
	want := 0.5 * 200e-6 * 0.36
	if math.Abs(m.ID-want)/want > 1e-3 {
		t.Errorf("M1 id %g, want %g", m.ID, want)
	}
	if m.Gm <= 0 {
		t.Error("M1 gm must be positive")
	}
	d := ops[0]
	if d.Region != "on" || d.ID <= 0 {
		t.Errorf("D1 %+v, want conducting", d)
	}
	var sb strings.Builder
	WriteOPReport(&sb, ops)
	if !strings.Contains(sb.String(), "M1") || !strings.Contains(sb.String(), "saturation") {
		t.Errorf("report rendering:\n%s", sb.String())
	}
}

func TestOPReportCutoff(t *testing.T) {
	c := New()
	vd := c.Node("d")
	c.AddVoltageSource("VD", vd, Ground, DC(1.2))
	c.AddMOSFET("M1", vd, Ground, Ground, MOSParams{Type: NMOS, VT: 0.4, Beta: 200e-6})
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	ops := c.OPReport(sol)
	if ops[0].Region != "cutoff" || ops[0].ID != 0 {
		t.Errorf("grounded-gate NMOS: %+v, want cutoff", ops[0])
	}
}

// TestResistiveNetworkMaximumPrinciple is a property test: in any random
// resistive network driven by DC sources, every node voltage must lie within
// [min source voltage, max source voltage] — the discrete maximum principle
// for the Laplace-like MNA system.
func TestResistiveNetworkMaximumPrinciple(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New()
		nNodes := 3 + r.Intn(8)
		nodes := make([]NodeID, nNodes)
		for i := range nodes {
			nodes[i] = c.Node(fmt.Sprintf("n%d", i))
		}
		// Spanning chain keeps everything connected; extra random edges.
		prev := Ground
		for i, n := range nodes {
			c.AddResistor(fmt.Sprintf("Rc%d", i), prev, n, 100+5000*r.Float64())
			prev = n
		}
		for e := 0; e < nNodes; e++ {
			a := nodes[r.Intn(nNodes)]
			b := Ground
			if r.Intn(2) == 0 {
				b = nodes[r.Intn(nNodes)]
			}
			if a == b {
				continue
			}
			c.AddResistor(fmt.Sprintf("Re%d", e), a, b, 100+5000*r.Float64())
		}
		// One or two DC sources with random values, on distinct nodes (two
		// ideal sources on one node would be contradictory).
		vmin, vmax := math.Inf(1), math.Inf(-1)
		for s := 0; s < 1+r.Intn(2); s++ {
			v := -5 + 10*r.Float64()
			c.AddVoltageSource(fmt.Sprintf("V%d", s), nodes[s], Ground, DC(v))
			if v < vmin {
				vmin = v
			}
			if v > vmax {
				vmax = v
			}
		}
		// Ground is effectively a 0V boundary too.
		if vmin > 0 {
			vmin = 0
		}
		if vmax < 0 {
			vmax = 0
		}
		sol, err := c.DC()
		if err != nil {
			return false
		}
		const eps = 1e-9
		for _, n := range nodes {
			v := sol.Voltage(n)
			if v < vmin-eps || v > vmax+eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMOSGateCapacitanceMillerDelay(t *testing.T) {
	// An inverter with Cgd suffers Miller feedthrough: its propagation delay
	// must exceed the zero-cap version driven by the same resistive source.
	delay := func(cgd float64) float64 {
		c := New()
		vdd, src, in, out := c.Node("vdd"), c.Node("src"), c.Node("in"), c.Node("out")
		c.AddVoltageSource("VDD", vdd, Ground, DC(1.2))
		c.AddVoltageSource("VIN", src, Ground, Pulse{V0: 0, V1: 1.2, Delay: 1e-10, Rise: 2e-11, Fall: 2e-11, Width: 1e-8})
		c.AddResistor("RS", src, in, 5e3) // finite driver impedance
		p := MOSParams{VT: 0.4, Beta: 250e-6, Lambda: 0.05, Cgd: cgd}
		pn := p
		pn.Type = NMOS
		pn.Beta = 500e-6
		pp := p
		pp.Type = PMOS
		c.AddMOSFET("MP", out, in, vdd, pp)
		c.AddMOSFET("MN", out, in, Ground, pn)
		c.AddCapacitor("CL", out, Ground, 5e-15)
		tr, err := c.Transient(3e-9, 2e-12)
		if err != nil {
			t.Fatal(err)
		}
		tIn, err := tr.CrossingTime(src, 0.6, true, 0)
		if err != nil {
			t.Fatal(err)
		}
		tOut, err := tr.CrossingTime(out, 0.6, false, tIn)
		if err != nil {
			t.Fatal(err)
		}
		return tOut - tIn
	}
	d0 := delay(0)
	d1 := delay(20e-15)
	if d1 <= d0 {
		t.Errorf("Miller cap did not slow the inverter: %g vs %g", d1, d0)
	}
}
