package spice

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// DeviceOP is the operating-point annotation of one nonlinear device, the
// information a designer reads off a SPICE .op printout to check bias.
type DeviceOP struct {
	// Name is the device identifier.
	Name string
	// Kind is "mosfet" or "diode".
	Kind string
	// ID is the DC current (drain current, or diode forward current).
	ID float64
	// Gm and Gds are the small-signal transconductance and output
	// conductance at the operating point (diodes report Gds only).
	Gm, Gds float64
	// Region is "cutoff", "triode" or "saturation" for MOSFETs, "on"/"off"
	// for diodes.
	Region string
}

// OPReport annotates every nonlinear device at the given DC solution.
// Devices are reported in name order.
func (c *Circuit) OPReport(sol *Solution) []DeviceOP {
	var out []DeviceOP
	for _, dev := range c.devices {
		switch d := dev.(type) {
		case *mosfet:
			vd, vg, vs := sol.Voltage(d.d), sol.Voltage(d.g), sol.Voltage(d.s)
			if d.p.Type == PMOS {
				vd, vg, vs = -vd, -vg, -vs
			}
			sign := 1.0
			if vd < vs {
				vd, vs = vs, vd
				sign = -1
			}
			vgs, vds := vg-vs, vd-vs
			i, gm, gds := squareLawIDS(vgs, vds, d.p)
			region := "saturation"
			switch {
			case vgs <= d.p.VT:
				region = "cutoff"
			case vds < vgs-d.p.VT:
				region = "triode"
			}
			out = append(out, DeviceOP{
				Name: d.id, Kind: "mosfet",
				ID: sign * i, Gm: gm, Gds: gds, Region: region,
			})
		case *diode:
			vdio := sol.Voltage(d.a) - sol.Voltage(d.b)
			if vdio > 0.9 {
				vdio = 0.9
			}
			e := math.Exp(vdio / d.vt)
			i := d.is * (e - 1)
			g := d.is * e / d.vt
			region := "off"
			if vdio > 0.4 {
				region = "on"
			}
			out = append(out, DeviceOP{Name: d.id, Kind: "diode", ID: i, Gds: g, Region: region})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// WriteOPReport renders the report as text.
func WriteOPReport(w io.Writer, ops []DeviceOP) {
	fmt.Fprintf(w, "%-8s %-7s %12s %12s %12s  %s\n", "device", "kind", "id (A)", "gm (S)", "gds (S)", "region")
	for _, op := range ops {
		fmt.Fprintf(w, "%-8s %-7s %12.4g %12.4g %12.4g  %s\n", op.Name, op.Kind, op.ID, op.Gm, op.Gds, op.Region)
	}
}
