package spice

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/linalg"
)

// acCtx carries the complex MNA system of one AC frequency point.
type acCtx struct {
	a      *linalg.CMatrix
	b      []complex128
	omega  float64
	op     []float64 // DC operating point (node voltages + branch currents)
	nNodes int
}

func (ctx *acCtx) v(n NodeID) float64 {
	if n == Ground {
		return 0
	}
	return ctx.op[n]
}

func (ctx *acCtx) addA(i, j NodeID, v complex128) {
	if i == Ground || j == Ground {
		return
	}
	ctx.a.Add(int(i), int(j), v)
}

func (ctx *acCtx) addB(i NodeID, v complex128) {
	if i == Ground {
		return
	}
	ctx.b[i] += v
}

// acStamper is implemented by devices that contribute to the small-signal
// system. Every device implements it; devices with no AC behaviour stamp
// nothing.
type acStamper interface {
	stampAC(ctx *acCtx)
}

func (r *resistor) stampAC(ctx *acCtx) {
	g := complex(r.g, 0)
	ctx.addA(r.a, r.a, g)
	ctx.addA(r.b, r.b, g)
	ctx.addA(r.a, r.b, -g)
	ctx.addA(r.b, r.a, -g)
}

func (cp *capacitor) stampAC(ctx *acCtx) {
	y := complex(0, ctx.omega*cp.c)
	ctx.addA(cp.a, cp.a, y)
	ctx.addA(cp.b, cp.b, y)
	ctx.addA(cp.a, cp.b, -y)
	ctx.addA(cp.b, cp.a, -y)
}

func (cs *currentSource) stampAC(ctx *acCtx) {
	// Independent DC current sources are open circuits in AC.
	if cs.acMag != 0 {
		ctx.addB(cs.a, complex(-cs.acMag, 0))
		ctx.addB(cs.b, complex(cs.acMag, 0))
	}
}

func (vs *voltageSource) stampAC(ctx *acCtx) {
	bi := NodeID(ctx.nNodes + vs.ord)
	ctx.addA(vs.p, bi, 1)
	ctx.addA(vs.m, bi, -1)
	ctx.addA(bi, vs.p, 1)
	ctx.addA(bi, vs.m, -1)
	// DC sources are AC shorts (rhs 0); the designated stimulus drives its
	// AC magnitude.
	ctx.addB(bi, complex(vs.acMag, 0))
}

func (v *vccs) stampAC(ctx *acCtx) {
	gm := complex(v.gm, 0)
	ctx.addA(v.outP, v.ctrlP, gm)
	ctx.addA(v.outP, v.ctrlM, -gm)
	ctx.addA(v.outM, v.ctrlP, -gm)
	ctx.addA(v.outM, v.ctrlM, gm)
}

func (d *diode) stampAC(ctx *acCtx) {
	vd := ctx.v(d.a) - ctx.v(d.b)
	if vd > 0.9 {
		vd = 0.9
	}
	g := complex(d.is*math.Exp(vd/d.vt)/d.vt+1e-12, 0)
	ctx.addA(d.a, d.a, g)
	ctx.addA(d.b, d.b, g)
	ctx.addA(d.a, d.b, -g)
	ctx.addA(d.b, d.a, -g)
}

func (m *mosfet) stampAC(ctx *acCtx) {
	vd, vg, vs := ctx.v(m.d), ctx.v(m.g), ctx.v(m.s)
	if m.p.Type == PMOS {
		vd, vg, vs = -vd, -vg, -vs
	}
	d, s := m.d, m.s
	if vd < vs {
		vd, vs = vs, vd
		d, s = s, d
	}
	_, gm, gds := squareLawIDS(vg-vs, vd-vs, m.p)
	gds += 1e-12
	cgm, cgds := complex(gm, 0), complex(gds, 0)
	ctx.addA(d, m.g, cgm)
	ctx.addA(d, s, -cgm-cgds)
	ctx.addA(d, d, cgds)
	ctx.addA(s, m.g, -cgm)
	ctx.addA(s, s, cgm+cgds)
	ctx.addA(s, d, -cgds)
}

// SetACMagnitude designates the named source as the AC stimulus with the
// given magnitude (typically 1 so outputs read directly as transfer
// functions). It returns an error when no source with that name exists.
func (c *Circuit) SetACMagnitude(name string, mag float64) error {
	for _, dev := range c.devices {
		switch d := dev.(type) {
		case *voltageSource:
			if d.id == name {
				d.acMag = mag
				return nil
			}
		case *currentSource:
			if d.id == name {
				d.acMag = mag
				return nil
			}
		}
	}
	return fmt.Errorf("spice: no voltage/current source named %q", name)
}

// ACResult holds a frequency sweep of complex node voltages.
type ACResult struct {
	circ *Circuit
	// Freqs are the analysis frequencies in Hz.
	Freqs []float64
	// states[i] is the complex solution at Freqs[i].
	states [][]complex128
}

// Voltage returns the complex voltage of node n at frequency index i.
func (r *ACResult) Voltage(n NodeID, i int) complex128 {
	if n == Ground {
		return 0
	}
	return r.states[i][n]
}

// Mag returns |V(n)| at frequency index i.
func (r *ACResult) Mag(n NodeID, i int) float64 { return cmplx.Abs(r.Voltage(n, i)) }

// MagDB returns 20·log10|V(n)| at frequency index i.
func (r *ACResult) MagDB(n NodeID, i int) float64 { return 20 * math.Log10(r.Mag(n, i)) }

// PhaseDeg returns the phase of V(n) in degrees at frequency index i.
func (r *ACResult) PhaseDeg(n NodeID, i int) float64 {
	return cmplx.Phase(r.Voltage(n, i)) * 180 / math.Pi
}

// UnityGainFreq returns the frequency at which |V(n)| crosses 1 from above,
// log-interpolated between sweep points.
func (r *ACResult) UnityGainFreq(n NodeID) (float64, error) {
	for i := 1; i < len(r.Freqs); i++ {
		m0, m1 := r.Mag(n, i-1), r.Mag(n, i)
		if m0 >= 1 && m1 < 1 {
			// Interpolate in log-log space.
			l0, l1 := math.Log10(m0), math.Log10(m1)
			f0, f1 := math.Log10(r.Freqs[i-1]), math.Log10(r.Freqs[i])
			frac := l0 / (l0 - l1)
			return math.Pow(10, f0+frac*(f1-f0)), nil
		}
	}
	return 0, fmt.Errorf("spice: node %s never crosses unity gain in [%.3g, %.3g] Hz",
		r.circ.NodeName(n), r.Freqs[0], r.Freqs[len(r.Freqs)-1])
}

// AC computes the DC operating point, linearizes every device around it and
// sweeps the complex MNA system over the given frequencies.
func (c *Circuit) AC(freqs []float64) (*ACResult, error) {
	if len(freqs) == 0 {
		return nil, fmt.Errorf("spice: empty AC frequency list")
	}
	op, err := c.solveDC()
	if err != nil {
		return nil, err
	}
	n := c.unknowns()
	res := &ACResult{circ: c, Freqs: freqs}
	a := linalg.NewCMatrix(n, n)
	b := make([]complex128, n)
	for _, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("spice: AC frequency %g must be positive", f)
		}
		a.Reset()
		for i := range b {
			b[i] = 0
		}
		ctx := &acCtx{a: a, b: b, omega: 2 * math.Pi * f, op: op, nNodes: len(c.nodeNames)}
		for _, dev := range c.devices {
			dev.(acStamper).stampAC(ctx)
		}
		// Keep cutoff devices from leaving floating nodes.
		for i := 0; i < len(c.nodeNames); i++ {
			a.Add(i, i, complex(nodeGmin, 0))
		}
		x, err := linalg.SolveComplex(a, b)
		if err != nil {
			return nil, fmt.Errorf("spice: AC solve at %g Hz: %w", f, err)
		}
		res.states = append(res.states, x)
	}
	return res, nil
}

// LogSpace returns a logarithmic frequency sweep from fStart to fStop with
// the given number of points per decade (≥ 1).
func LogSpace(fStart, fStop float64, perDecade int) []float64 {
	if fStart <= 0 || fStop <= fStart || perDecade < 1 {
		panic(fmt.Sprintf("spice: invalid LogSpace(%g, %g, %d)", fStart, fStop, perDecade))
	}
	var out []float64
	step := math.Pow(10, 1/float64(perDecade))
	for f := fStart; f <= fStop*(1+1e-12); f *= step {
		out = append(out, f)
	}
	return out
}
