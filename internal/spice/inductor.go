package spice

import "fmt"

// inductor is a two-terminal inductance handled with an MNA branch current:
// v(a) − v(b) = L·di/dt. It is a short in DC, jωL in AC, and uses a
// backward-Euler companion in transient analysis. Besides general RLC
// circuits, it enables the classic "DC-closed, AC-open" feedback testbench
// used to measure open-loop amplifier gain at a stabilized operating point.
type inductor struct {
	id   string
	a, b NodeID
	l    float64
	ord  int // branch ordinal
}

func (l *inductor) name() string { return l.id }

func (l *inductor) stamp(ctx *stampCtx) {
	bi := NodeID(ctx.nNodes + l.ord)
	// KCL: branch current leaves a, enters b.
	ctx.addA(l.a, bi, 1)
	ctx.addA(l.b, bi, -1)
	// Branch equation (DC: dt = 0 ⇒ v(a) − v(b) = 0, a short).
	// BE:  vd − (L/h)·i = −(L/h)·iPrev
	// TR:  vd − (2L/h)·i = −(2L/h)·iPrev − vdPrev
	ctx.addA(bi, l.a, 1)
	ctx.addA(bi, l.b, -1)
	if ctx.dt > 0 {
		g := l.l / ctx.dt
		iPrev := 0.0
		if ctx.xPrev != nil {
			iPrev = ctx.xPrev[bi]
		}
		if ctx.trap {
			g *= 2
			vdPrev := ctx.vPrev(l.a) - ctx.vPrev(l.b)
			ctx.addA(bi, bi, -g)
			ctx.addB(bi, -g*iPrev-vdPrev)
		} else {
			ctx.addA(bi, bi, -g)
			ctx.addB(bi, -g*iPrev)
		}
	}
}

func (l *inductor) stampAC(ctx *acCtx) {
	bi := NodeID(ctx.nNodes + l.ord)
	ctx.addA(l.a, bi, 1)
	ctx.addA(l.b, bi, -1)
	ctx.addA(bi, l.a, 1)
	ctx.addA(bi, l.b, -1)
	ctx.addA(bi, bi, complex(0, -ctx.omega*l.l))
}

// AddInductor connects an inductance of henries between nodes a and b.
func (c *Circuit) AddInductor(name string, a, b NodeID, henries float64) {
	if henries <= 0 {
		panic(fmt.Sprintf("spice: inductor %s has non-positive inductance %g", name, henries))
	}
	c.devices = append(c.devices, &inductor{id: name, a: a, b: b, l: henries, ord: c.branchCount})
	c.branchCount++
}
