package spice

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Solution holds the result of a DC operating-point analysis.
type Solution struct {
	circ *Circuit
	x    []float64
}

// Voltage returns the solved voltage at a node (0 for Ground).
func (s *Solution) Voltage(n NodeID) float64 {
	if n == Ground {
		return 0
	}
	return s.x[n]
}

// SourceCurrent returns the branch current of the i-th voltage source, in
// the order the sources were added.
func (s *Solution) SourceCurrent(i int) float64 {
	return s.x[len(s.circ.nodeNames)+s.circ.vsrcBranches[i]]
}

const (
	maxNewton = 300
	absTol    = 1e-9
	relTol    = 1e-6
	// nodeGmin is a global leak from every node to ground that keeps the
	// MNA matrix nonsingular when devices are cut off.
	nodeGmin = 1e-12
	// maxStep caps the Newton voltage update, which damps the exponential
	// devices into convergence.
	maxStep = 0.5
)

// solveNewton iterates MNA Newton–Raphson at a fixed time point. x0 is the
// initial estimate (may be nil); xPrev is the previous transient solution
// (nil for DC); dt is the timestep (0 for DC).
func (c *Circuit) solveNewton(kind string, x0, xPrev []float64, t, dt float64) ([]float64, error) {
	return c.solveNewtonGmin(kind, x0, xPrev, t, dt, nodeGmin)
}

// solveNewtonGmin is solveNewton with an explicit node-to-ground leak, the
// knob used by gmin stepping.
func (c *Circuit) solveNewtonGmin(kind string, x0, xPrev []float64, t, dt, gmin float64) ([]float64, error) {
	return c.solveNewtonFull(kind, x0, xPrev, t, dt, gmin, false)
}

// solveNewtonFull is the complete Newton driver: gmin leak and integrator
// selection are explicit.
func (c *Circuit) solveNewtonFull(kind string, x0, xPrev []float64, t, dt, gmin float64, trap bool) ([]float64, error) {
	n := c.unknowns()
	if n == 0 {
		return nil, fmt.Errorf("spice: empty circuit")
	}
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	} else {
		for node, v := range c.nodesets {
			x[node] = v
		}
	}
	a := newSysMatrix(n)
	b := make([]float64, n)
	worst := math.Inf(1)
	worstIdx := -1
	for iter := 0; iter < maxNewton; iter++ {
		a.reset()
		for i := range b {
			b[i] = 0
		}
		ctx := &stampCtx{a: a, b: b, x: x, t: t, dt: dt, xPrev: xPrev, nNodes: len(c.nodeNames), trap: trap}
		for _, dev := range c.devices {
			dev.stamp(ctx)
		}
		for i := 0; i < len(c.nodeNames); i++ {
			a.add(i, i, gmin)
		}
		mat := &linalg.Matrix{Rows: n, Cols: n, Data: a.data}
		lu, err := linalg.LUFactor(mat)
		if err != nil {
			return nil, fmt.Errorf("spice: %s analysis matrix is singular (floating node?): %w", kind, err)
		}
		xNew, err := lu.Solve(b)
		if err != nil {
			return nil, fmt.Errorf("spice: %s analysis solve: %w", kind, err)
		}
		// Damped update and convergence check. The step limit anneals after
		// 50 iterations: a constant clamp can ping-pong between two
		// linearizations of a square-law kink (a ±maxStep limit cycle),
		// whereas a shrinking limit forces the iterates together.
		lim := maxStep
		if iter > 50 {
			lim = maxStep * math.Pow(0.5, float64((iter-50)/25+1))
			// Floor the annealed limit: the iterate must still be able to
			// cover rail-to-rail distances within the iteration budget.
			if lim < 0.02 {
				lim = 0.02
			}
		}
		worst = 0
		worstIdx = -1
		for i := range x {
			dx := xNew[i] - x[i]
			if i < len(c.nodeNames) {
				// Node voltages are step-limited; branch currents are not.
				if dx > lim {
					dx = lim
				} else if dx < -lim {
					dx = -lim
				}
			}
			if ad := math.Abs(dx); ad > worst {
				worst = ad
				worstIdx = i
			}
			x[i] += dx
		}
		if worst < absTol+relTol*linalg.NormInf(x) {
			return x, nil
		}
	}
	unknown := "?"
	if worstIdx >= 0 {
		if worstIdx < len(c.nodeNames) {
			unknown = "V(" + c.nodeNames[worstIdx] + ")"
		} else {
			unknown = fmt.Sprintf("branch %d", worstIdx-len(c.nodeNames))
		}
	}
	return nil, fmt.Errorf("spice: %s analysis did not converge after %d iterations (worst update %.3g at %s)", kind, maxNewton, worst, unknown)
}

// solveDC finds the operating point, falling back to gmin stepping when the
// plain Newton iteration fails to converge: the system is first solved with
// a heavy artificial leak from every node to ground (which convexifies the
// problem), and the leak is then relaxed decade by decade with warm starts.
func (c *Circuit) solveDC() ([]float64, error) {
	x, err := c.solveNewton("DC", nil, nil, 0, 0)
	if err == nil {
		return x, nil
	}
	var warm []float64
	for g := 1e-3; g >= nodeGmin; g /= 10 {
		step, err2 := c.solveNewtonGmin("DC(gmin)", warm, nil, 0, 0, g)
		if err2 != nil {
			return nil, err // report the original failure
		}
		warm = step
	}
	return c.solveNewtonGmin("DC(gmin)", warm, nil, 0, 0, nodeGmin)
}

// DC computes the operating point with all waveforms evaluated at t = 0.
func (c *Circuit) DC() (*Solution, error) {
	x, err := c.solveDC()
	if err != nil {
		return nil, err
	}
	return &Solution{circ: c, x: x}, nil
}

// TranResult holds a fixed-step transient waveform set.
type TranResult struct {
	circ *Circuit
	// Times are the solved time points, starting at 0.
	Times []float64
	// states[i] is the full MNA solution at Times[i].
	states [][]float64
}

// Voltage returns the waveform of one node.
func (tr *TranResult) Voltage(n NodeID) []float64 {
	out := make([]float64, len(tr.Times))
	for i, st := range tr.states {
		if n == Ground {
			out[i] = 0
		} else {
			out[i] = st[n]
		}
	}
	return out
}

// At returns the voltage of node n at time index i.
func (tr *TranResult) At(n NodeID, i int) float64 {
	if n == Ground {
		return 0
	}
	return tr.states[i][n]
}

// CrossingTime returns the first time after tStart at which node n crosses
// threshold in the given direction, linearly interpolated between steps.
func (tr *TranResult) CrossingTime(n NodeID, threshold float64, rising bool, tStart float64) (float64, error) {
	for i := 1; i < len(tr.Times); i++ {
		if tr.Times[i] < tStart {
			continue
		}
		v0, v1 := tr.At(n, i-1), tr.At(n, i)
		var crossed bool
		if rising {
			crossed = v0 < threshold && v1 >= threshold
		} else {
			crossed = v0 > threshold && v1 <= threshold
		}
		if crossed {
			frac := (threshold - v0) / (v1 - v0)
			return tr.Times[i-1] + frac*(tr.Times[i]-tr.Times[i-1]), nil
		}
	}
	dir := "rising"
	if !rising {
		dir = "falling"
	}
	return 0, fmt.Errorf("spice: node %s never crosses %.3g V (%s) after t=%.3g",
		tr.circ.NodeName(n), threshold, dir, tStart)
}

// Transient runs a backward-Euler transient analysis from the DC operating
// point at t = 0 up to stop with a fixed step. Use TransientMethod to select
// trapezoidal integration instead.
func (c *Circuit) Transient(stop, step float64) (*TranResult, error) {
	return c.TransientMethod(stop, step, BackwardEuler)
}
