package spice

import (
	"math"
	"testing"
)

func TestACRCLowPass(t *testing.T) {
	// R=1k, C=159.155nF → f_c = 1/(2πRC) ≈ 1 kHz.
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.AddVoltageSource("VIN", in, Ground, DC(0))
	if err := c.SetACMagnitude("VIN", 1); err != nil {
		t.Fatal(err)
	}
	c.AddResistor("R", in, out, 1e3)
	c.AddCapacitor("C", out, Ground, 159.155e-9)
	freqs := []float64{100, 1000, 10000, 100000}
	res, err := c.AC(freqs)
	if err != nil {
		t.Fatal(err)
	}
	// At f_c: |H| = 1/√2, phase = −45°.
	if got := res.Mag(out, 1); math.Abs(got-1/math.Sqrt2) > 1e-3 {
		t.Errorf("|H(fc)| = %g, want %g", got, 1/math.Sqrt2)
	}
	if got := res.PhaseDeg(out, 1); math.Abs(got+45) > 0.2 {
		t.Errorf("∠H(fc) = %g°, want −45°", got)
	}
	// One decade above: |H| ≈ 1/10 (−20 dB/dec).
	if got := res.MagDB(out, 2); math.Abs(got+20.04) > 0.2 {
		t.Errorf("|H(10fc)| = %g dB, want ≈ −20", got)
	}
	// Passband: |H| ≈ 1.
	if got := res.Mag(out, 0); math.Abs(got-0.995) > 0.01 {
		t.Errorf("|H(0.1fc)| = %g, want ≈ 1", got)
	}
}

func TestACVCCSAmplifier(t *testing.T) {
	// gm = 1mS into RL = 10k: gain = −10 (inverting), flat over frequency.
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.AddVoltageSource("VIN", in, Ground, DC(0))
	if err := c.SetACMagnitude("VIN", 1); err != nil {
		t.Fatal(err)
	}
	c.AddVCCS("G", out, Ground, in, Ground, 1e-3)
	c.AddResistor("RL", out, Ground, 10e3)
	res, err := c.AC([]float64{1e3, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Freqs {
		v := res.Voltage(out, i)
		if math.Abs(real(v)+10) > 1e-6 || math.Abs(imag(v)) > 1e-9 {
			t.Errorf("gain at %g Hz = %v, want −10", res.Freqs[i], v)
		}
	}
}

func TestACCommonSourceAmp(t *testing.T) {
	// NMOS common-source with resistor load: low-frequency gain −gm·(RL‖ro),
	// single pole from the load capacitor.
	c := New()
	vdd, in, out := c.Node("vdd"), c.Node("in"), c.Node("out")
	c.AddVoltageSource("VDD", vdd, Ground, DC(1.2))
	c.AddVoltageSource("VIN", in, Ground, DC(0.6))
	if err := c.SetACMagnitude("VIN", 1); err != nil {
		t.Fatal(err)
	}
	p := MOSParams{Type: NMOS, VT: 0.4, Beta: 1e-3, Lambda: 0.05}
	c.AddMOSFET("M1", out, in, Ground, p)
	c.AddResistor("RL", vdd, out, 20e3)
	c.AddCapacitor("CL", out, Ground, 1e-12)

	// Expected small-signal values at the operating point.
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	vds := sol.Voltage(out)
	_, gm, gds := squareLawIDS(0.6, vds, p)
	rout := 1 / (gds + 1/20e3)
	wantGain := gm * rout

	res, err := c.AC([]float64{1e3})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Mag(out, 0)
	if math.Abs(got-wantGain)/wantGain > 1e-3 {
		t.Errorf("LF gain %g, want %g", got, wantGain)
	}
	// Phase ≈ 180° (inverting) at low frequency.
	ph := res.PhaseDeg(out, 0)
	if math.Abs(math.Abs(ph)-180) > 3 {
		t.Errorf("LF phase %g°, want ≈ ±180°", ph)
	}
	// The pole: f_p = 1/(2π·rout·CL); −3 dB point.
	fp := 1 / (2 * math.Pi * rout * 1e-12)
	res2, err := c.AC([]float64{fp})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Mag(out, 0); math.Abs(got-wantGain/math.Sqrt2)/wantGain > 0.01 {
		t.Errorf("gain at pole %g, want %g", got, wantGain/math.Sqrt2)
	}
}

func TestACUnityGainFreq(t *testing.T) {
	// Single-pole amplifier: A0=100, fp=1kHz → GBW ≈ 100 kHz.
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.AddVoltageSource("VIN", in, Ground, DC(0))
	if err := c.SetACMagnitude("VIN", 1); err != nil {
		t.Fatal(err)
	}
	c.AddVCCS("G", out, Ground, in, Ground, 1e-3) // gm 1mS
	c.AddResistor("RL", out, Ground, 100e3)       // A0 = 100
	c.AddCapacitor("CL", out, Ground, 1.59155e-9) // fp ≈ 1 kHz
	res, err := c.AC(LogSpace(10, 1e7, 20))
	if err != nil {
		t.Fatal(err)
	}
	ugf, err := res.UnityGainFreq(out)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ugf-100e3)/100e3 > 0.02 {
		t.Errorf("unity-gain frequency %g, want ≈ 100 kHz", ugf)
	}
}

func TestACDiodeSmallSignal(t *testing.T) {
	// A forward-biased diode's AC conductance is Id/vt; check the divider
	// formed with a series resistor.
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.AddVoltageSource("VIN", in, Ground, DC(1.0))
	if err := c.SetACMagnitude("VIN", 1); err != nil {
		t.Fatal(err)
	}
	c.AddResistor("R", in, out, 1e3)
	c.AddDiode("D", out, Ground, 1e-14)
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	vd := sol.Voltage(out)
	gd := 1e-14 * math.Exp(vd/0.025852) / 0.025852
	want := (1 / gd) / (1/gd + 1e3)
	res, err := c.AC([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mag(out, 0); math.Abs(got-want)/want > 1e-3 {
		t.Errorf("divider gain %g, want %g", got, want)
	}
}

func TestSetACMagnitudeUnknownSource(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.AddResistor("R", n, Ground, 1)
	if err := c.SetACMagnitude("VX", 1); err == nil {
		t.Error("unknown source must error")
	}
}

func TestACValidation(t *testing.T) {
	c := New()
	in := c.Node("in")
	c.AddVoltageSource("VIN", in, Ground, DC(1))
	c.AddResistor("R", in, Ground, 1e3)
	if _, err := c.AC(nil); err == nil {
		t.Error("empty frequency list must error")
	}
	if _, err := c.AC([]float64{-1}); err == nil {
		t.Error("negative frequency must error")
	}
}

func TestLogSpace(t *testing.T) {
	f := LogSpace(1, 1000, 10)
	if len(f) != 31 {
		t.Fatalf("LogSpace has %d points, want 31", len(f))
	}
	if math.Abs(f[0]-1) > 1e-12 || math.Abs(f[30]-1000)/1000 > 1e-9 {
		t.Errorf("endpoints %g, %g", f[0], f[30])
	}
	for i := 1; i < len(f); i++ {
		ratio := f[i] / f[i-1]
		if math.Abs(ratio-math.Pow(10, 0.1)) > 1e-9 {
			t.Fatalf("non-uniform log spacing at %d: %g", i, ratio)
		}
	}
}

func TestLogSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogSpace(10, 1, 5)
}
