package spice

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Netlist is a parsed SPICE-style circuit deck: the circuit plus the
// analysis and output directives found in it.
type Netlist struct {
	// Circuit is the assembled circuit.
	Circuit *Circuit
	// Cards are the parsed device lines in deck order. They are retained so
	// callers can rebuild perturbed copies of the circuit with BuildCircuit
	// (the hook process-variation pipelines use to re-instantiate the deck
	// per Monte Carlo sample).
	Cards []DeviceCard
	// Analyses are the requested analyses in deck order.
	Analyses []Analysis
	// Prints are the node names requested by .print (all nodes if empty).
	Prints []string

	// nodesets are the deck's .nodeset hints by node name, re-applied by
	// BuildCircuit.
	nodesets []nodesetCard
}

// nodesetCard is one .nodeset entry kept by node name so rebuilt circuits
// can re-resolve it.
type nodesetCard struct {
	node string
	v    float64
}

// DeviceCard is one parsed device line. Kind is the canonical upper-case
// card letter ('R', 'C', 'L', 'V', 'I', 'D', 'G', 'M'); only the fields
// meaningful for that kind are set. Line is the 1-based line number of the
// card in the source deck (continuation lines report their base line).
type DeviceCard struct {
	Kind  byte
	Name  string
	Nodes []string
	// Value is the element value: resistance, capacitance, inductance, or
	// VCCS transconductance.
	Value float64
	// Wave is the source waveform of V and I cards.
	Wave Waveform
	// IS is the diode saturation current.
	IS float64
	// MOS carries the MOSFET model parameters.
	MOS MOSParams
	// Line is the 1-based source line of the card.
	Line int
}

// Analysis is one analysis directive.
type Analysis struct {
	// Kind is "dc", "tran" or "ac".
	Kind string
	// Stop, Step configure .tran; Method selects the integrator.
	Stop, Step float64
	Method     Integrator
	// Freqs configures .ac.
	Freqs []float64
	// ACSource and ACMag name the .ac stimulus.
	ACSource string
	ACMag    float64
}

// ParseValue parses a SPICE number with engineering suffix: 1k, 2.2u, 10meg,
// 5n, 0.1, 1e-9. Suffixes are case-insensitive; "meg" must be matched before
// "m".
func ParseValue(s string) (float64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 0, fmt.Errorf("spice: empty value")
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(t, "meg"):
		mult, t = 1e6, t[:len(t)-3]
	case strings.HasSuffix(t, "mil"):
		mult, t = 25.4e-6, t[:len(t)-3]
	case strings.HasSuffix(t, "t"):
		mult, t = 1e12, t[:len(t)-1]
	case strings.HasSuffix(t, "g"):
		mult, t = 1e9, t[:len(t)-1]
	case strings.HasSuffix(t, "k"):
		mult, t = 1e3, t[:len(t)-1]
	case strings.HasSuffix(t, "m"):
		mult, t = 1e-3, t[:len(t)-1]
	case strings.HasSuffix(t, "u"):
		mult, t = 1e-6, t[:len(t)-1]
	case strings.HasSuffix(t, "n"):
		mult, t = 1e-9, t[:len(t)-1]
	case strings.HasSuffix(t, "p"):
		mult, t = 1e-12, t[:len(t)-1]
	case strings.HasSuffix(t, "f"):
		mult, t = 1e-15, t[:len(t)-1]
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("spice: bad value %q", s)
	}
	return v * mult, nil
}

// parseKV extracts KEY=VALUE fields into a map, returning the positional
// (non KEY=VALUE) fields separately.
func parseKV(fields []string) (pos []string, kv map[string]float64, err error) {
	kv = map[string]float64{}
	for _, f := range fields {
		if i := strings.IndexByte(f, '='); i >= 0 {
			v, err := ParseValue(f[i+1:])
			if err != nil {
				return nil, nil, err
			}
			kv[strings.ToUpper(f[:i])] = v
		} else {
			pos = append(pos, f)
		}
	}
	return pos, kv, nil
}

// parseWaveform parses a source specification: "DC 5", "5",
// "PULSE(v0 v1 delay rise fall width [period])" or
// "PWL(t0 v0 t1 v1 ...)".
func parseWaveform(fields []string) (Waveform, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("spice: missing source value")
	}
	joined := strings.ToUpper(strings.Join(fields, " "))
	switch {
	case strings.HasPrefix(joined, "DC"):
		if len(fields) < 2 {
			return nil, fmt.Errorf("spice: DC source needs a value")
		}
		v, err := ParseValue(fields[1])
		if err != nil {
			return nil, err
		}
		return DC(v), nil
	case strings.HasPrefix(joined, "PWL"):
		inner := joined[strings.Index(joined, "PWL")+3:]
		inner = strings.TrimSpace(inner)
		inner = strings.TrimPrefix(inner, "(")
		inner = strings.TrimSuffix(inner, ")")
		parts := strings.Fields(inner)
		if len(parts) < 4 || len(parts)%2 != 0 {
			return nil, fmt.Errorf("spice: PWL needs ≥ 2 (time, value) pairs")
		}
		w := PWL{}
		for i := 0; i < len(parts); i += 2 {
			tv, err := ParseValue(parts[i])
			if err != nil {
				return nil, err
			}
			vv, err := ParseValue(parts[i+1])
			if err != nil {
				return nil, err
			}
			if len(w.Times) > 0 && tv <= w.Times[len(w.Times)-1] {
				return nil, fmt.Errorf("spice: PWL times must be ascending")
			}
			w.Times = append(w.Times, tv)
			w.Values = append(w.Values, vv)
		}
		return w, nil
	case strings.HasPrefix(joined, "PULSE"):
		inner := joined[strings.Index(joined, "PULSE")+5:]
		inner = strings.TrimSpace(inner)
		inner = strings.TrimPrefix(inner, "(")
		inner = strings.TrimSuffix(inner, ")")
		parts := strings.Fields(inner)
		if len(parts) < 6 {
			return nil, fmt.Errorf("spice: PULSE needs ≥ 6 parameters, got %d", len(parts))
		}
		vals := make([]float64, len(parts))
		for i, p := range parts {
			v, err := ParseValue(p)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		p := Pulse{V0: vals[0], V1: vals[1], Delay: vals[2], Rise: vals[3], Fall: vals[4], Width: vals[5]}
		if len(vals) > 6 {
			p.Period = vals[6]
		}
		return p, nil
	default:
		v, err := ParseValue(fields[0])
		if err != nil {
			return nil, err
		}
		return DC(v), nil
	}
}

// ParseNetlist reads a SPICE-style deck. Supported cards:
//
//	Rname a b value            resistor
//	Cname a b value            capacitor
//	Lname a b value            inductor
//	Vname p m <source>         voltage source (DC v | PULSE(...))
//	Iname a b <source>         current source
//	Dname a b [IS=..]          diode
//	Gname op om cp cm gm       VCCS
//	Mname d g s NMOS|PMOS VT=.. BETA=.. [LAMBDA=..]
//	.nodeset V(node)=value
//	.dc
//	.op
//	.tran step stop [trap]
//	.ac source mag dec points fstart fstop
//	.print node...
//	.end
//
// Lines starting with '*' are comments; '+' continues the previous line.
// Parse errors carry the 1-based source line number of the offending card
// (continuation lines report the line the card started on).
func ParseNetlist(r io.Reader) (*Netlist, error) {
	type srcLine struct {
		text string
		num  int // 1-based source line of the card's first physical line
	}
	sc := bufio.NewScanner(r)
	var lines []srcLine
	physical := 0
	for sc.Scan() {
		physical++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "*") {
			continue
		}
		if strings.HasPrefix(raw, "+") && len(lines) > 0 {
			lines[len(lines)-1].text += " " + strings.TrimPrefix(raw, "+")
			continue
		}
		lines = append(lines, srcLine{text: raw, num: physical})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spice: reading netlist: %w", err)
	}
	nl := &Netlist{Circuit: New()}
	for _, sl := range lines {
		fields := strings.Fields(sl.text)
		name := fields[0]
		fail := func(format string, args ...any) error {
			return fmt.Errorf("spice: line %d (%s): %s", sl.num, name, fmt.Sprintf(format, args...))
		}
		if strings.HasPrefix(name, ".") {
			if err := nl.parseDirective(fields); err != nil {
				return nil, fail("%v", err)
			}
			continue
		}
		card, err := parseDeviceCard(fields)
		if err != nil {
			return nil, fail("%v", err)
		}
		card.Line = sl.num
		if err := addCard(nl.Circuit, &card); err != nil {
			return nil, fail("%v", err)
		}
		nl.Cards = append(nl.Cards, card)
	}
	return nl, nil
}

// parseDeviceCard parses one device line into its card form without touching
// a circuit, so the same card can later be re-instantiated (possibly
// perturbed) by BuildCircuit.
func parseDeviceCard(fields []string) (DeviceCard, error) {
	name := fields[0]
	kind := name[0]
	if kind >= 'a' && kind <= 'z' {
		kind -= 'a' - 'A'
	}
	card := DeviceCard{Kind: kind, Name: name}
	switch kind {
	case 'R', 'C', 'L':
		if len(fields) != 4 {
			return card, fmt.Errorf("want %c name a b value", kind)
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return card, err
		}
		card.Nodes = fields[1:3]
		card.Value = v
	case 'V', 'I':
		if len(fields) < 4 {
			return card, fmt.Errorf("want %c name a b source", kind)
		}
		w, err := parseWaveform(fields[3:])
		if err != nil {
			return card, err
		}
		card.Nodes = fields[1:3]
		card.Wave = w
	case 'D':
		if len(fields) < 3 {
			return card, fmt.Errorf("want D name a b [IS=..]")
		}
		_, kv, err := parseKV(fields[3:])
		if err != nil {
			return card, err
		}
		card.Nodes = fields[1:3]
		card.IS = 1e-14
		if v, ok := kv["IS"]; ok {
			card.IS = v
		}
	case 'G':
		if len(fields) != 6 {
			return card, fmt.Errorf("want G name outp outm ctrlp ctrlm gm")
		}
		gm, err := ParseValue(fields[5])
		if err != nil {
			return card, err
		}
		card.Nodes = fields[1:5]
		card.Value = gm
	case 'M':
		if len(fields) < 5 {
			return card, fmt.Errorf("want M name d g s NMOS|PMOS VT=.. BETA=..")
		}
		pos, kv, err := parseKV(fields[4:])
		if err != nil {
			return card, err
		}
		if len(pos) != 1 {
			return card, fmt.Errorf("want exactly one model name, got %v", pos)
		}
		var typ MOSType
		switch strings.ToUpper(pos[0]) {
		case "NMOS":
			typ = NMOS
		case "PMOS":
			typ = PMOS
		default:
			return card, fmt.Errorf("unknown MOS model %q", pos[0])
		}
		vt, okVT := kv["VT"]
		beta, okB := kv["BETA"]
		if !okVT || !okB {
			return card, fmt.Errorf("MOSFET needs VT= and BETA=")
		}
		card.Nodes = fields[1:4]
		card.MOS = MOSParams{Type: typ, VT: vt, Beta: beta, Lambda: kv["LAMBDA"]}
	default:
		return card, fmt.Errorf("unknown card")
	}
	return card, nil
}

// addCard instantiates one card into the circuit. Element values that the
// device constructors would panic on (non-positive R, C, L, BETA) are
// rejected as errors here, so neither hostile decks nor extreme variation
// perturbations can take the process down.
func addCard(c *Circuit, card *DeviceCard) error {
	n := func(i int) NodeID { return c.Node(card.Nodes[i]) }
	switch card.Kind {
	case 'R':
		if card.Value <= 0 {
			return fmt.Errorf("resistance %g must be positive", card.Value)
		}
		c.AddResistor(card.Name, n(0), n(1), card.Value)
	case 'C':
		if card.Value <= 0 {
			return fmt.Errorf("capacitance %g must be positive", card.Value)
		}
		c.AddCapacitor(card.Name, n(0), n(1), card.Value)
	case 'L':
		if card.Value <= 0 {
			return fmt.Errorf("inductance %g must be positive", card.Value)
		}
		c.AddInductor(card.Name, n(0), n(1), card.Value)
	case 'V':
		c.AddVoltageSource(card.Name, n(0), n(1), card.Wave)
	case 'I':
		c.AddCurrentSource(card.Name, n(0), n(1), card.Wave)
	case 'D':
		c.AddDiode(card.Name, n(0), n(1), card.IS)
	case 'G':
		c.AddVCCS(card.Name, n(0), n(1), n(2), n(3), card.Value)
	case 'M':
		if card.MOS.Beta <= 0 {
			return fmt.Errorf("BETA %g must be positive", card.MOS.Beta)
		}
		c.AddMOSFET(card.Name, n(0), n(1), n(2), card.MOS)
	default:
		return fmt.Errorf("unknown card kind %q", card.Kind)
	}
	return nil
}

// BuildCircuit assembles a fresh Circuit from the deck's parsed device
// cards, calling mod (when non-nil) on a copy of each card first — the hook
// variation pipelines use to perturb element values per sample without
// re-parsing the deck. The receiver is not modified; the deck's .nodeset
// hints are re-applied to the new circuit.
func (nl *Netlist) BuildCircuit(mod func(i int, card *DeviceCard)) (*Circuit, error) {
	c := New()
	for i := range nl.Cards {
		card := nl.Cards[i]
		if mod != nil {
			mod(i, &card)
		}
		if err := addCard(c, &card); err != nil {
			return nil, fmt.Errorf("spice: line %d (%s): %v", card.Line, card.Name, err)
		}
	}
	for _, ns := range nl.nodesets {
		c.NodeSet(c.Node(ns.node), ns.v)
	}
	return c, nil
}

// parseDirective handles one dot card.
func (nl *Netlist) parseDirective(fields []string) error {
	switch strings.ToLower(fields[0]) {
	case ".end":
		return nil
	case ".dc":
		nl.Analyses = append(nl.Analyses, Analysis{Kind: "dc"})
	case ".op":
		nl.Analyses = append(nl.Analyses, Analysis{Kind: "op"})
	case ".tran":
		if len(fields) != 3 && len(fields) != 4 {
			return fmt.Errorf(".tran wants step stop [trap]")
		}
		step, err := ParseValue(fields[1])
		if err != nil {
			return err
		}
		stop, err := ParseValue(fields[2])
		if err != nil {
			return err
		}
		method := BackwardEuler
		if len(fields) == 4 {
			switch strings.ToLower(fields[3]) {
			case "trap", "trapezoidal":
				method = Trapezoidal
			case "be", "euler":
				method = BackwardEuler
			default:
				return fmt.Errorf(".tran method %q unknown (trap|be)", fields[3])
			}
		}
		nl.Analyses = append(nl.Analyses, Analysis{Kind: "tran", Step: step, Stop: stop, Method: method})
	case ".ac":
		// .ac source mag dec points fstart fstop
		if len(fields) != 7 || strings.ToLower(fields[3]) != "dec" {
			return fmt.Errorf(".ac wants: source mag dec points fstart fstop")
		}
		mag, err := ParseValue(fields[2])
		if err != nil {
			return err
		}
		pts, err := strconv.Atoi(fields[4])
		if err != nil || pts < 1 {
			return fmt.Errorf(".ac points must be a positive integer")
		}
		f0, err := ParseValue(fields[5])
		if err != nil {
			return err
		}
		f1, err := ParseValue(fields[6])
		if err != nil {
			return err
		}
		if f0 <= 0 || f1 <= f0 {
			return fmt.Errorf(".ac needs 0 < fstart < fstop")
		}
		nl.Analyses = append(nl.Analyses, Analysis{
			Kind: "ac", ACSource: fields[1], ACMag: mag,
			Freqs: LogSpace(f0, f1, pts),
		})
	case ".nodeset":
		for _, f := range fields[1:] {
			up := strings.ToUpper(f)
			if !strings.HasPrefix(up, "V(") {
				return fmt.Errorf(".nodeset wants V(node)=value, got %q", f)
			}
			close := strings.IndexByte(f, ')')
			eq := strings.IndexByte(f, '=')
			if close < 0 || eq < close {
				return fmt.Errorf(".nodeset wants V(node)=value, got %q", f)
			}
			v, err := ParseValue(f[eq+1:])
			if err != nil {
				return err
			}
			nl.nodesets = append(nl.nodesets, nodesetCard{node: f[2:close], v: v})
			nl.Circuit.NodeSet(nl.Circuit.Node(f[2:close]), v)
		}
	case ".print":
		nl.Prints = append(nl.Prints, fields[1:]...)
	default:
		return fmt.Errorf("unknown directive %s", fields[0])
	}
	return nil
}

// Run executes every analysis in the deck, writing text results to w.
func (nl *Netlist) Run(w io.Writer) error {
	c := nl.Circuit
	printNodes := nl.Prints
	if len(printNodes) == 0 {
		printNodes = append([]string(nil), c.nodeNames...)
	}
	ids := make([]NodeID, len(printNodes))
	for i, n := range printNodes {
		ids[i] = c.Node(n)
	}
	if len(nl.Analyses) == 0 {
		nl.Analyses = []Analysis{{Kind: "dc"}}
	}
	for _, an := range nl.Analyses {
		switch an.Kind {
		case "dc":
			sol, err := c.DC()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "* DC operating point")
			for i, n := range printNodes {
				fmt.Fprintf(w, "V(%s) = %.6g\n", n, sol.Voltage(ids[i]))
			}
		case "op":
			sol, err := c.DC()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "* device operating points")
			WriteOPReport(w, c.OPReport(sol))
		case "tran":
			tr, err := c.TransientMethod(an.Stop, an.Step, an.Method)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "* transient, %d points\n", len(tr.Times))
			fmt.Fprintf(w, "time")
			for _, n := range printNodes {
				fmt.Fprintf(w, ",V(%s)", n)
			}
			fmt.Fprintln(w)
			for i, t := range tr.Times {
				fmt.Fprintf(w, "%.6g", t)
				for _, id := range ids {
					fmt.Fprintf(w, ",%.6g", tr.At(id, i))
				}
				fmt.Fprintln(w)
			}
		case "ac":
			if err := c.SetACMagnitude(an.ACSource, an.ACMag); err != nil {
				return err
			}
			res, err := c.AC(an.Freqs)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "* ac, %d points\n", len(res.Freqs))
			fmt.Fprintf(w, "freq")
			for _, n := range printNodes {
				fmt.Fprintf(w, ",mag(%s)dB,phase(%s)", n, n)
			}
			fmt.Fprintln(w)
			for i, f := range res.Freqs {
				fmt.Fprintf(w, "%.6g", f)
				for _, id := range ids {
					db := res.MagDB(id, i)
					if math.IsInf(db, -1) {
						db = -400
					}
					fmt.Fprintf(w, ",%.6g,%.6g", db, res.PhaseDeg(id, i))
				}
				fmt.Fprintln(w)
			}
		default:
			return fmt.Errorf("spice: unknown analysis %q", an.Kind)
		}
	}
	return nil
}
