package spice

import (
	"fmt"
	"math"
)

// Integrator selects the transient time-integration method.
type Integrator int

// Supported integrators.
const (
	// BackwardEuler is robust and first-order accurate (the default).
	BackwardEuler Integrator = iota
	// Trapezoidal is second-order accurate; the first step still uses
	// backward Euler to bootstrap the reactive-device state.
	Trapezoidal
)

// String names the integrator.
func (m Integrator) String() string {
	switch m {
	case BackwardEuler:
		return "backward-euler"
	case Trapezoidal:
		return "trapezoidal"
	default:
		return fmt.Sprintf("Integrator(%d)", int(m))
	}
}

// tranStateful is implemented by devices that carry per-step state across a
// trapezoidal transient (the capacitor's branch current).
type tranStateful interface {
	resetTran()
	commitTran(x, xPrev []float64, dt float64, trap bool)
}

// resetTran clears the capacitor's current memory at transient start.
func (cp *capacitor) resetTran() { cp.iPrev = 0 }

// commitTran records the capacitor current after an accepted step:
// BE: i = (C/h)·Δv; TR: i = (2C/h)·Δv − i_prev.
func (cp *capacitor) commitTran(x, xPrev []float64, dt float64, trap bool) {
	vd := nodeDelta(x, cp.a, cp.b)
	vdPrev := nodeDelta(xPrev, cp.a, cp.b)
	if trap {
		cp.iPrev = (2*cp.c/dt)*(vd-vdPrev) - cp.iPrev
	} else {
		cp.iPrev = (cp.c / dt) * (vd - vdPrev)
	}
}

// nodeDelta reads v(a) − v(b) from a solution vector.
func nodeDelta(x []float64, a, b NodeID) float64 {
	va, vb := 0.0, 0.0
	if a != Ground {
		va = x[a]
	}
	if b != Ground {
		vb = x[b]
	}
	return va - vb
}

// TransientMethod runs a fixed-step transient analysis with the chosen
// integrator. Transient(stop, step) is shorthand for backward Euler.
func (c *Circuit) TransientMethod(stop, step float64, method Integrator) (*TranResult, error) {
	if stop <= 0 || step <= 0 || step > stop {
		return nil, fmt.Errorf("spice: invalid transient window stop=%g step=%g", stop, step)
	}
	if method != BackwardEuler && method != Trapezoidal {
		return nil, fmt.Errorf("spice: unknown integrator %v", method)
	}
	x, err := c.solveDC()
	if err != nil {
		return nil, err
	}
	for _, dev := range c.devices {
		if st, ok := dev.(tranStateful); ok {
			st.resetTran()
		}
	}
	tr := &TranResult{circ: c}
	tr.Times = append(tr.Times, 0)
	tr.states = append(tr.states, append([]float64(nil), x...))
	steps := int(math.Ceil(stop / step))
	for k := 1; k <= steps; k++ {
		t := float64(k) * step
		if t > stop {
			t = stop
		}
		// The first step bootstraps with backward Euler; later steps use
		// the requested method.
		trap := method == Trapezoidal && k > 1
		xNew, err := c.advanceTran(x, tr.Times[len(tr.Times)-1], t, trap, 0)
		if err != nil {
			return nil, fmt.Errorf("spice: t=%.4g: %w", t, err)
		}
		x = xNew
		tr.Times = append(tr.Times, t)
		tr.states = append(tr.states, append([]float64(nil), x...))
	}
	return tr, nil
}

// advanceTran integrates from tFrom to tTo. When the Newton iteration fails
// to converge — which happens around fast switching edges — the step is
// recursively halved (local timestep control) up to a depth limit, with
// reactive-device state committed per accepted substep.
func (c *Circuit) advanceTran(x []float64, tFrom, tTo float64, trap bool, depth int) ([]float64, error) {
	dt := tTo - tFrom
	xNew, err := c.solveNewtonTran(x, tTo, dt, trap)
	if err != nil {
		const maxDepth = 10
		if depth >= maxDepth {
			return nil, err
		}
		mid := tFrom + dt/2
		half, err2 := c.advanceTran(x, tFrom, mid, trap, depth+1)
		if err2 != nil {
			return nil, err2
		}
		return c.advanceTran(half, mid, tTo, trap, depth+1)
	}
	for _, dev := range c.devices {
		if st, ok := dev.(tranStateful); ok {
			st.commitTran(xNew, x, dt, trap)
		}
	}
	return xNew, nil
}

// solveNewtonTran is the transient step solve with the integrator flag
// threaded through the stamp context.
func (c *Circuit) solveNewtonTran(xPrev []float64, t, dt float64, trap bool) ([]float64, error) {
	return c.solveNewtonFull("transient", xPrev, xPrev, t, dt, nodeGmin, trap)
}
