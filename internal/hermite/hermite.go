// Package hermite implements the normalized probabilists' Hermite
// polynomials and the multi-dimensional orthonormal polynomial bases built
// from them (Section II of the paper, eqs. (2)–(4)).
//
// With ΔY independent standard normal after PCA, the tensor products of
// normalized Hermite polynomials form an orthonormal basis with respect to
// the Gaussian measure, which is exactly the property the OMP inner-product
// selection criterion (eqs. (12)–(14)) relies on.
package hermite

import (
	"fmt"
	"math"
)

// H returns the normalized probabilists' Hermite polynomial H̃ₙ(x) =
// Heₙ(x)/√(n!), so that E[H̃ᵢ(Z)·H̃ⱼ(Z)] = δᵢⱼ for Z ~ N(0,1).
// It panics for negative n.
func H(n int, x float64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("hermite: negative order %d", n))
	}
	// Normalized three-term recurrence:
	//   H̃ₙ₊₁(x) = (x·H̃ₙ(x) − √n·H̃ₙ₋₁(x)) / √(n+1).
	prev, cur := 0.0, 1.0 // H̃₋₁ (unused), H̃₀
	for k := 0; k < n; k++ {
		next := (x*cur - math.Sqrt(float64(k))*prev) / math.Sqrt(float64(k+1))
		prev, cur = cur, next
	}
	return cur
}

// Eval1DUpTo fills dst[0..max] with H̃₀(x) … H̃_max(x) using one pass of the
// recurrence. dst is allocated when nil (length max+1).
func Eval1DUpTo(dst []float64, max int, x float64) []float64 {
	if max < 0 {
		panic(fmt.Sprintf("hermite: negative max order %d", max))
	}
	if dst == nil {
		dst = make([]float64, max+1)
	}
	dst[0] = 1
	if max == 0 {
		return dst
	}
	dst[1] = x
	for k := 1; k < max; k++ {
		dst[k+1] = (x*dst[k] - math.Sqrt(float64(k))*dst[k-1]) / math.Sqrt(float64(k+1))
	}
	return dst
}

// VarPow is one factor of a tensor-product term: variable index Var raised
// to Hermite order Pow (Pow ≥ 1).
type VarPow struct {
	Var, Pow int
}

// Term is one multi-dimensional basis function: the product of normalized
// Hermite polynomials over the variables it touches. The empty Term is the
// constant function 1.
type Term []VarPow

// Degree returns the total polynomial degree of the term.
func (t Term) Degree() int {
	d := 0
	for _, vp := range t {
		d += vp.Pow
	}
	return d
}

// Eval evaluates the term at the point y.
func (t Term) Eval(y []float64) float64 {
	p := 1.0
	for _, vp := range t {
		p *= H(vp.Pow, y[vp.Var])
	}
	return p
}

// String renders the term for diagnostics, e.g. "H1(y3)·H2(y7)".
func (t Term) String() string {
	if len(t) == 0 {
		return "1"
	}
	s := ""
	for i, vp := range t {
		if i > 0 {
			s += "·"
		}
		s += fmt.Sprintf("H%d(y%d)", vp.Pow, vp.Var)
	}
	return s
}

// LinearTerms returns the M = n+1 terms of the linear basis over n
// variables: the constant followed by H̃₁(yᵢ) = yᵢ for each variable, in
// variable order — the layout of eq. (4) truncated at degree 1.
func LinearTerms(n int) []Term {
	if n < 0 {
		panic(fmt.Sprintf("hermite: negative dimension %d", n))
	}
	terms := make([]Term, 0, n+1)
	terms = append(terms, Term{})
	for i := 0; i < n; i++ {
		terms = append(terms, Term{{Var: i, Pow: 1}})
	}
	return terms
}

// QuadraticTerms returns the M = 1 + n + n(n+1)/2 terms of the total-degree-2
// basis over n variables: constant, linears, pure quadratics H̃₂(yᵢ) and
// cross terms yᵢ·yⱼ (i < j), matching eq. (4).
func QuadraticTerms(n int) []Term {
	if n < 0 {
		panic(fmt.Sprintf("hermite: negative dimension %d", n))
	}
	terms := make([]Term, 0, 1+n+n*(n+1)/2)
	terms = append(terms, LinearTerms(n)...)
	for i := 0; i < n; i++ {
		terms = append(terms, Term{{Var: i, Pow: 2}})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			terms = append(terms, Term{{Var: i, Pow: 1}, {Var: j, Pow: 1}})
		}
	}
	return terms
}

// TotalDegreeTerms returns every term of total degree ≤ deg over n
// variables in graded order (degree 0, then 1, …). The count is
// C(n+deg, deg); callers are responsible for keeping that tractable.
func TotalDegreeTerms(n, deg int) []Term {
	if n < 0 || deg < 0 {
		panic(fmt.Sprintf("hermite: invalid basis n=%d deg=%d", n, deg))
	}
	var terms []Term
	var cur Term
	var gen func(startVar, remaining int)
	gen = func(startVar, remaining int) {
		terms = append(terms, append(Term(nil), cur...))
		if remaining == 0 {
			return
		}
		for v := startVar; v < n; v++ {
			for p := 1; p <= remaining; p++ {
				cur = append(cur, VarPow{Var: v, Pow: p})
				gen(v+1, remaining-p)
				cur = cur[:len(cur)-1]
			}
		}
	}
	// Generate grouped by degree so the ordering is graded.
	for d := 0; d <= deg; d++ {
		n0 := len(terms)
		gen(0, d)
		// gen emits all degrees ≤ d; keep only the exactly-degree-d ones.
		keep := terms[:n0]
		for _, t := range terms[n0:] {
			if t.Degree() == d {
				keep = append(keep, t)
			}
		}
		terms = keep
	}
	return terms
}

// HDeriv returns d/dx H̃ₙ(x) using the identity H̃ₙ'(x) = √n·H̃ₙ₋₁(x).
func HDeriv(n int, x float64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("hermite: negative order %d", n))
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(float64(n)) * H(n-1, x)
}

// EvalGrad evaluates the term and its gradient with respect to every
// variable it touches. dst (length dim, zeroed by the caller or nil) receives
// ∂t/∂yᵥ at the touched indices; the term value is returned.
func (t Term) EvalGrad(dst, y []float64) float64 {
	if dst == nil {
		dst = make([]float64, len(y))
	}
	// value = Π H̃ₚ(y_v); ∂/∂y_v = H̃ₚ'(y_v)·Π_{w≠v} H̃(y_w).
	val := 1.0
	for _, vp := range t {
		val *= H(vp.Pow, y[vp.Var])
	}
	for i, vp := range t {
		g := HDeriv(vp.Pow, y[vp.Var])
		for j, other := range t {
			if j == i {
				continue
			}
			g *= H(other.Pow, y[other.Var])
		}
		dst[vp.Var] += g
	}
	return val
}
