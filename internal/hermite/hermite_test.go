package hermite

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHLowOrdersMatchClosedForms(t *testing.T) {
	// Paper eq. (3): g1 = 1, g2 = y, g3 = (y²−1)/√2.
	for _, x := range []float64{-2.5, -1, 0, 0.3, 1.7} {
		if got := H(0, x); got != 1 {
			t.Errorf("H0(%g) = %g, want 1", x, got)
		}
		if got := H(1, x); got != x {
			t.Errorf("H1(%g) = %g, want %g", x, got, x)
		}
		want2 := (x*x - 1) / math.Sqrt2
		if got := H(2, x); math.Abs(got-want2) > 1e-14 {
			t.Errorf("H2(%g) = %g, want %g", x, got, want2)
		}
		want3 := (x*x*x - 3*x) / math.Sqrt(6)
		if got := H(3, x); math.Abs(got-want3) > 1e-13 {
			t.Errorf("H3(%g) = %g, want %g", x, got, want3)
		}
	}
}

func TestHNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	H(-1, 0)
}

func TestEval1DUpToMatchesH(t *testing.T) {
	f := func(x float64) bool {
		if math.Abs(x) > 5 {
			x = math.Mod(x, 5)
		}
		vals := Eval1DUpTo(nil, 6, x)
		for n := 0; n <= 6; n++ {
			if math.Abs(vals[n]-H(n, x)) > 1e-12*(1+math.Abs(vals[n])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOrthonormalityByQuadrature verifies eq. (2): ∫H̃ᵢH̃ⱼ·pdf = δᵢⱼ, using
// Gauss–Hermite-like dense trapezoidal quadrature over the Gaussian weight.
func TestOrthonormalityByQuadrature(t *testing.T) {
	const (
		lo, hi = -10.0, 10.0
		steps  = 20000
	)
	h := (hi - lo) / steps
	for i := 0; i <= 4; i++ {
		for j := 0; j <= 4; j++ {
			sum := 0.0
			for k := 0; k <= steps; k++ {
				x := lo + float64(k)*h
				w := 1.0
				if k == 0 || k == steps {
					w = 0.5
				}
				pdf := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
				sum += w * H(i, x) * H(j, x) * pdf
			}
			sum *= h
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(sum-want) > 1e-8 {
				t.Errorf("⟨H%d,H%d⟩ = %g, want %g", i, j, sum, want)
			}
		}
	}
}

func TestMonteCarloOrthonormality2D(t *testing.T) {
	// Check a few 2-D tensor products: E[gᵢ·gⱼ] = δᵢⱼ under N(0, I).
	terms := []Term{
		{},
		{{Var: 0, Pow: 1}},
		{{Var: 1, Pow: 1}},
		{{Var: 0, Pow: 2}},
		{{Var: 0, Pow: 1}, {Var: 1, Pow: 1}},
	}
	r := rand.New(rand.NewSource(13))
	const n = 400000
	m := len(terms)
	acc := make([][]float64, m)
	for i := range acc {
		acc[i] = make([]float64, m)
	}
	y := make([]float64, 2)
	vals := make([]float64, m)
	for k := 0; k < n; k++ {
		y[0], y[1] = r.NormFloat64(), r.NormFloat64()
		for i, tm := range terms {
			vals[i] = tm.Eval(y)
		}
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				acc[i][j] += vals[i] * vals[j]
			}
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			got := acc[i][j] / n
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(got-want) > 0.02 {
				t.Errorf("E[%v·%v] = %g, want %g", terms[i], terms[j], got, want)
			}
		}
	}
}

func TestLinearTerms(t *testing.T) {
	terms := LinearTerms(3)
	if len(terms) != 4 {
		t.Fatalf("got %d terms, want 4", len(terms))
	}
	if terms[0].Degree() != 0 {
		t.Error("first term must be constant")
	}
	y := []float64{0.5, -1, 2}
	for i := 1; i < 4; i++ {
		if got := terms[i].Eval(y); got != y[i-1] {
			t.Errorf("term %d eval = %g, want %g", i, got, y[i-1])
		}
	}
}

func TestQuadraticTermsCount(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20, 200} {
		want := 1 + n + n*(n+1)/2
		if got := len(QuadraticTerms(n)); got != want {
			t.Errorf("QuadraticTerms(%d) has %d terms, want %d", n, got, want)
		}
	}
	// Paper Section V-A2: 200-dimensional quadratic model has 20301 coefficients.
	if got := len(QuadraticTerms(200)); got != 20301 {
		t.Errorf("200-dim quadratic basis has %d terms, want 20301 (paper)", got)
	}
}

func TestQuadraticTermsDistinct(t *testing.T) {
	terms := QuadraticTerms(6)
	seen := make(map[string]bool, len(terms))
	for _, tm := range terms {
		s := tm.String()
		if seen[s] {
			t.Fatalf("duplicate term %s", s)
		}
		seen[s] = true
		if tm.Degree() > 2 {
			t.Fatalf("term %s exceeds degree 2", s)
		}
	}
}

func TestTotalDegreeTermsCount(t *testing.T) {
	// C(n+d, d) terms.
	binom := func(n, k int) int {
		r := 1
		for i := 1; i <= k; i++ {
			r = r * (n - k + i) / i
		}
		return r
	}
	for _, tc := range []struct{ n, d int }{{1, 3}, {2, 2}, {3, 4}, {4, 3}} {
		want := binom(tc.n+tc.d, tc.d)
		got := len(TotalDegreeTerms(tc.n, tc.d))
		if got != want {
			t.Errorf("TotalDegreeTerms(%d,%d) = %d terms, want %d", tc.n, tc.d, got, want)
		}
	}
}

func TestTotalDegreeMatchesQuadratic(t *testing.T) {
	a := TotalDegreeTerms(4, 2)
	b := QuadraticTerms(4)
	if len(a) != len(b) {
		t.Fatalf("count mismatch %d vs %d", len(a), len(b))
	}
	setOf := func(ts []Term) map[string]bool {
		m := make(map[string]bool)
		for _, tm := range ts {
			m[tm.String()] = true
		}
		return m
	}
	sa, sb := setOf(a), setOf(b)
	for k := range sa {
		if !sb[k] {
			t.Errorf("term %s missing from QuadraticTerms", k)
		}
	}
}

func TestTermString(t *testing.T) {
	if (Term{}).String() != "1" {
		t.Error("constant term should print as 1")
	}
	tm := Term{{Var: 3, Pow: 1}, {Var: 7, Pow: 2}}
	if tm.String() != "H1(y3)·H2(y7)" {
		t.Errorf("String = %q", tm.String())
	}
}

func TestGradedOrder(t *testing.T) {
	terms := TotalDegreeTerms(3, 3)
	last := 0
	for _, tm := range terms {
		d := tm.Degree()
		if d < last {
			t.Fatalf("terms not in graded order: degree %d after %d", d, last)
		}
		last = d
	}
}
