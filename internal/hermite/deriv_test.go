package hermite

import (
	"math"
	"math/rand"
	"testing"
)

func TestHDerivIdentity(t *testing.T) {
	// H̃ₙ'(x) = √n·H̃ₙ₋₁(x); cross-check against central finite differences.
	const h = 1e-6
	for n := 0; n <= 5; n++ {
		for _, x := range []float64{-1.7, -0.3, 0, 0.9, 2.4} {
			got := HDeriv(n, x)
			fd := (H(n, x+h) - H(n, x-h)) / (2 * h)
			if math.Abs(got-fd) > 1e-6*(1+math.Abs(fd)) {
				t.Errorf("H%d'(%g) = %g, finite difference %g", n, x, got, fd)
			}
		}
	}
}

func TestHDerivZeroOrder(t *testing.T) {
	if HDeriv(0, 1.5) != 0 {
		t.Error("constant's derivative must be 0")
	}
}

func TestHDerivNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HDeriv(-1, 0)
}

func TestTermEvalGrad(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	terms := []Term{
		{},
		{{Var: 1, Pow: 1}},
		{{Var: 0, Pow: 2}},
		{{Var: 0, Pow: 1}, {Var: 2, Pow: 1}},
		{{Var: 1, Pow: 2}, {Var: 2, Pow: 1}},
	}
	const h = 1e-6
	y := make([]float64, 3)
	for trial := 0; trial < 20; trial++ {
		for i := range y {
			y[i] = r.NormFloat64()
		}
		for _, term := range terms {
			grad := make([]float64, 3)
			val := term.EvalGrad(grad, y)
			if math.Abs(val-term.Eval(y)) > 1e-13*(1+math.Abs(val)) {
				t.Fatalf("EvalGrad value %g ≠ Eval %g for %v", val, term.Eval(y), term)
			}
			for v := 0; v < 3; v++ {
				yp := append([]float64(nil), y...)
				ym := append([]float64(nil), y...)
				yp[v] += h
				ym[v] -= h
				fd := (term.Eval(yp) - term.Eval(ym)) / (2 * h)
				if math.Abs(grad[v]-fd) > 1e-5*(1+math.Abs(fd)) {
					t.Errorf("%v: ∂/∂y%d = %g, finite difference %g", term, v, grad[v], fd)
				}
			}
		}
	}
}
