package obs

import "runtime"

// RuntimeStats is a point-in-time snapshot of the Go runtime health gauges
// exposed by /metrics: scheduler pressure (goroutines), memory footprint,
// and cumulative GC cost.
type RuntimeStats struct {
	// Goroutines is the live goroutine count.
	Goroutines int
	// HeapAllocBytes is the live heap in bytes.
	HeapAllocBytes uint64
	// HeapSysBytes is the heap memory obtained from the OS.
	HeapSysBytes uint64
	// GCPauseTotalSeconds is the cumulative stop-the-world pause time.
	GCPauseTotalSeconds float64
	// GCCycles is the number of completed GC cycles.
	GCCycles uint32
}

// ReadRuntimeStats samples the runtime. It calls runtime.ReadMemStats, which
// briefly stops the world — cheap at scrape frequency, not per request.
func ReadRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:          runtime.NumGoroutine(),
		HeapAllocBytes:      ms.HeapAlloc,
		HeapSysBytes:        ms.HeapSys,
		GCPauseTotalSeconds: float64(ms.PauseTotalNs) / 1e9,
		GCCycles:            ms.NumGC,
	}
}

// JSON renders the snapshot for the /metrics JSON view.
func (s RuntimeStats) JSON() map[string]any {
	return map[string]any{
		"goroutines":             s.Goroutines,
		"heap_alloc_bytes":       s.HeapAllocBytes,
		"heap_sys_bytes":         s.HeapSysBytes,
		"gc_pause_total_seconds": s.GCPauseTotalSeconds,
		"gc_cycles":              s.GCCycles,
	}
}
