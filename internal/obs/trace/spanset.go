package trace

import (
	"context"
	"sync"
)

// SpanSet turns a stream of sequential stage labels — the shape of
// core.FitEvent telemetry — into sibling child spans under one parent:
// each time the stage label changes, the previous stage span ends and a
// new one starts. Safe for concurrent use and safe on a context without a
// span (every method no-ops).
type SpanSet struct {
	mu    sync.Mutex
	ctx   context.Context
	cur   *Span
	stage string
}

// NewSpanSet builds a SpanSet parented at ctx's current span.
func NewSpanSet(ctx context.Context) *SpanSet {
	return &SpanSet{ctx: ctx}
}

// Observe records one stage observation: the first sighting of a label
// opens a span, repeats update its attrs, and a label change closes the
// previous stage's span. Attrs overwrite by key, so passing the latest
// iteration counters on every event leaves the final values on the span.
func (ss *SpanSet) Observe(stage string, attrs ...Attr) {
	if ss == nil || stage == "" || SpanFromContext(ss.ctx) == nil {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.cur == nil || ss.stage != stage {
		ss.cur.End()
		_, ss.cur = Start(ss.ctx, stage)
		ss.stage = stage
	}
	for _, a := range attrs {
		ss.cur.SetAttr(a.Key, a.Value)
	}
}

// Close ends the in-flight stage span, if any.
func (ss *SpanSet) Close() {
	if ss == nil {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.cur.End()
	ss.cur = nil
	ss.stage = ""
}
