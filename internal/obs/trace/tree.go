package trace

import (
	"fmt"
	"sort"
)

// Node is one span in an assembled trace tree.
type Node struct {
	Record
	Children []*Node
}

// BuildTree assembles flat span records into a single tree, tolerating the
// damage a crashed or truncated trace can carry: records with missing or
// duplicate span IDs, orphans whose parent was dropped, self-parented
// spans, parent cycles, and multiple roots. It never panics and never
// drops a record — every input span appears exactly once in the result
// (duplicates by span ID collapse first-wins). Returns nil only for empty
// input. When the records do not form a single rooted tree, the roots are
// gathered under a synthetic "trace" node.
func BuildTree(spans []Record) *Node {
	if len(spans) == 0 {
		return nil
	}
	// Normalize: synthesize IDs for blank spans, collapse duplicates.
	nodes := make([]*Node, 0, len(spans))
	byID := make(map[string]*Node, len(spans))
	anon := 0
	for _, r := range spans {
		if r.SpanID == "" {
			anon++
			r.SpanID = fmt.Sprintf("anon-%d", anon)
		}
		if _, dup := byID[r.SpanID]; dup {
			continue
		}
		n := &Node{Record: r}
		byID[n.SpanID] = n
		nodes = append(nodes, n)
	}
	sort.SliceStable(nodes, func(i, j int) bool {
		if !nodes[i].Start.Equal(nodes[j].Start) {
			return nodes[i].Start.Before(nodes[j].Start)
		}
		return nodes[i].SpanID < nodes[j].SpanID
	})

	// Link children; anything without a resolvable parent is a root.
	// A self-parented span is an orphan, not a one-node cycle.
	var roots []*Node
	for _, n := range nodes {
		p, ok := byID[n.ParentID]
		if n.ParentID == "" || !ok || p == n {
			roots = append(roots, n)
			continue
		}
		p.Children = append(p.Children, n)
	}

	// Break parent cycles: any node not reachable from a root belongs to a
	// cycle; promote its earliest member to a root and re-walk. Bounded by
	// the span count, so the worst case is O(n²) on maxSpansPerTrace — fine.
	reached := make(map[*Node]bool, len(nodes))
	for {
		var walk func(*Node)
		walk = func(n *Node) {
			if reached[n] {
				return
			}
			reached[n] = true
			for _, c := range n.Children {
				walk(c)
			}
		}
		for _, r := range roots {
			walk(r)
		}
		promoted := false
		for _, n := range nodes {
			if !reached[n] {
				// Detach from its (cyclic) parent before promotion so the
				// node doesn't appear twice.
				if p, ok := byID[n.ParentID]; ok {
					p.Children = removeChild(p.Children, n)
				}
				roots = append(roots, n)
				promoted = true
				break
			}
		}
		if !promoted {
			break
		}
	}

	if len(roots) == 1 {
		return roots[0]
	}
	root := &Node{Record: Record{SpanID: "synthetic-root", Name: "trace", Start: roots[0].Start}}
	for _, r := range roots {
		if r.Start.Before(root.Start) {
			root.Start = r.Start
		}
	}
	root.Children = roots
	return root
}

func removeChild(children []*Node, n *Node) []*Node {
	out := children[:0]
	for _, c := range children {
		if c != n {
			out = append(out, c)
		}
	}
	return out
}

// Depth reports the number of levels in the tree (1 for a lone root).
func Depth(n *Node) int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := Depth(c); d > max {
			max = d
		}
	}
	return 1 + max
}

// CountNodes reports the total number of spans in the tree.
func CountNodes(n *Node) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += CountNodes(c)
	}
	return total
}
