package trace

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Config tunes a Store. Zero values select the documented defaults.
type Config struct {
	// Capacity bounds the completed-trace ring (default 256). Negative
	// disables tracing entirely: NewStore returns nil, and every call site
	// degrades to no-ops through nil-receiver safety.
	Capacity int
	// SlowThreshold marks a trace "slow": at or above it the trace is
	// always kept, regardless of SampleRate (default 1s).
	SlowThreshold time.Duration
	// SampleRate is the keep probability for fast, successful, unpinned
	// traces: 1 keeps everything, 0.1 keeps ~10%. The zero value selects
	// 1 (keep all); use a negative rate for "tail-only" — keep nothing but
	// errors, slow traces and pinned traces.
	SampleRate float64
	// Rand overrides the sampling coin flip (tests). Must return [0, 1).
	Rand func() float64
}

// Store is a bounded in-memory ring of completed traces plus the set of
// still-open ones, safe for concurrent use. A nil *Store is a valid
// "tracing disabled" store: every method no-ops.
type Store struct {
	capacity int
	slow     time.Duration
	rate     float64

	mu         sync.Mutex
	ring       []*Data
	head       int // next write position
	count      int
	byID       map[string]*Data
	open       map[string]*collector // trace id → live collector
	rnd        func() float64
	kept       int64
	sampledOut int64
	evicted    int64
}

// Stats is a point-in-time view of the store's counters.
type Stats struct {
	// Enabled is false only on the nil (disabled) store.
	Enabled bool
	// Stored and Open gauge the current contents; Capacity and
	// SlowThresholdSeconds echo the configuration.
	Stored               int
	Open                 int
	Capacity             int
	SlowThresholdSeconds float64
	SampleRate           float64
	// Kept/SampledOut/Evicted count sealed traces kept by the sampling
	// policy, dropped by it, and later pushed out of the ring.
	Kept       int64
	SampledOut int64
	Evicted    int64
}

// NewStore builds a trace store, or returns nil (tracing disabled) when
// cfg.Capacity is negative.
func NewStore(cfg Config) *Store {
	if cfg.Capacity < 0 {
		return nil
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 256
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = time.Second
	}
	switch {
	case cfg.SampleRate == 0:
		cfg.SampleRate = 1
	case cfg.SampleRate < 0:
		cfg.SampleRate = 0
	}
	st := &Store{
		capacity: cfg.Capacity,
		slow:     cfg.SlowThreshold,
		rate:     cfg.SampleRate,
		ring:     make([]*Data, cfg.Capacity),
		byID:     make(map[string]*Data, cfg.Capacity),
		open:     make(map[string]*collector),
		rnd:      cfg.Rand,
	}
	if st.rnd == nil {
		src := rand.New(rand.NewSource(time.Now().UnixNano()))
		var mu sync.Mutex
		st.rnd = func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return src.Float64()
		}
	}
	return st
}

// SlowThreshold reports the configured slow cutoff (0 on a nil store), so
// hosts can share one threshold between sampling and slow-request logging.
func (st *Store) SlowThreshold() time.Duration {
	if st == nil {
		return 0
	}
	return st.slow
}

// StartRoot opens a new trace rooted at a span named name. The root holds
// the trace open; it seals when the root and every WithHold span under it
// have ended. On a nil store it returns ctx unchanged and a nil span.
func (st *Store) StartRoot(ctx context.Context, name string, opts ...Option) (context.Context, *Span) {
	if st == nil {
		return ctx, nil
	}
	c := &collector{
		store:   st,
		traceID: newID(),
		live:    make(map[*Span]struct{}),
		start:   time.Now(),
	}
	s := c.startSpan(name, "", append([]Option{WithHold()}, opts...)...)
	c.mu.Lock()
	c.start = s.rec.Start // honor WithStart backdating on the root
	c.mu.Unlock()
	st.mu.Lock()
	st.open[c.traceID] = c
	st.mu.Unlock()
	return ContextWithSpan(ctx, s), s
}

// offer lands one sealed trace, applying the tail-sampling policy: keep
// every error trace, every slow-over-threshold trace and every pinned
// trace; coin-flip the rest at SampleRate.
func (st *Store) offer(d *Data, pinned bool) {
	keep := pinned || d.Status == StatusError || d.Duration >= st.slow
	if !keep {
		switch {
		case st.rate >= 1:
			keep = true
		case st.rate <= 0:
			keep = false
		default:
			keep = st.rnd() < st.rate
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.open, d.TraceID)
	if !keep {
		st.sampledOut++
		return
	}
	st.kept++
	if st.count == st.capacity {
		old := st.ring[st.head]
		delete(st.byID, old.TraceID)
		st.evicted++
		st.count--
	}
	st.ring[st.head] = d
	st.head = (st.head + 1) % st.capacity
	st.count++
	st.byID[d.TraceID] = d
}

// Get returns the trace by ID: a sealed trace from the ring, or a live
// snapshot (Complete=false) of a still-open one.
func (st *Store) Get(id string) (*Data, bool) {
	if st == nil {
		return nil, false
	}
	st.mu.Lock()
	if d, ok := st.byID[id]; ok {
		st.mu.Unlock()
		return d, true
	}
	c, ok := st.open[id]
	st.mu.Unlock()
	if !ok {
		return nil, false
	}
	return c.snapshot(), true
}

// Filter selects traces in List. Zero fields match everything.
type Filter struct {
	// Name substring-matches the trace's root span name (the route
	// pattern for HTTP traces, "job" for recovered jobs).
	Name string
	// Status matches the trace status exactly ("ok", "error",
	// "unfinished").
	Status string
	// MinDuration drops traces faster than this.
	MinDuration time.Duration
	// Limit caps the result count (0 = 100).
	Limit int
}

// List returns sealed traces newest-first, filtered.
func (st *Store) List(f Filter) []*Data {
	if st == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 100
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Data, 0, min(limit, st.count))
	for i := 0; i < st.count && len(out) < limit; i++ {
		d := st.ring[(st.head-1-i+st.capacity)%st.capacity]
		if f.Name != "" && !strings.Contains(d.Name, f.Name) {
			continue
		}
		if f.Status != "" && d.Status != f.Status {
			continue
		}
		if d.Duration < f.MinDuration {
			continue
		}
		out = append(out, d)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Stats snapshots the store's counters; the zero Stats (Enabled=false)
// comes back from a nil store.
func (st *Store) Stats() Stats {
	if st == nil {
		return Stats{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return Stats{
		Enabled:              true,
		Stored:               st.count,
		Open:                 len(st.open),
		Capacity:             st.capacity,
		SlowThresholdSeconds: st.slow.Seconds(),
		SampleRate:           st.rate,
		Kept:                 st.kept,
		SampledOut:           st.sampledOut,
		Evicted:              st.evicted,
	}
}
