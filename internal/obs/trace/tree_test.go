package trace

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// rec builds a Record with deterministic timing for tree tests.
func rec(id, parent, name string, startMS int) Record {
	return Record{
		SpanID:   id,
		ParentID: parent,
		Name:     name,
		Start:    time.Unix(0, int64(startMS)*int64(time.Millisecond)),
		Duration: time.Millisecond,
		Status:   StatusOK,
	}
}

func TestBuildTreeEmpty(t *testing.T) {
	if BuildTree(nil) != nil {
		t.Error("BuildTree(nil) should be nil")
	}
	if Depth(nil) != 0 || CountNodes(nil) != 0 {
		t.Error("Depth/CountNodes on nil should be 0")
	}
}

func TestBuildTreeWellFormed(t *testing.T) {
	spans := []Record{
		rec("c2", "c1", "fit", 20),
		rec("root", "", "POST /v1/fit", 0),
		rec("c1", "root", "job", 10),
		rec("c3", "c1", "publish", 30),
	}
	n := BuildTree(spans)
	if n.SpanID != "root" {
		t.Fatalf("root is %q, want the parentless span", n.SpanID)
	}
	if got := CountNodes(n); got != 4 {
		t.Errorf("nodes = %d, want 4", got)
	}
	if got := Depth(n); got != 3 {
		t.Errorf("depth = %d, want 3", got)
	}
	// Children are sorted by start time (input was shuffled).
	if len(n.Children) != 1 || n.Children[0].SpanID != "c1" {
		t.Fatalf("root children %v", n.Children)
	}
	kids := n.Children[0].Children
	if len(kids) != 2 || kids[0].SpanID != "c2" || kids[1].SpanID != "c3" {
		t.Errorf("c1 children out of start order: %v, %v", kids[0].SpanID, kids[1].SpanID)
	}
}

func TestBuildTreeOrphansAndMultipleRoots(t *testing.T) {
	spans := []Record{
		rec("a", "", "a", 0),
		rec("b", "gone", "orphan", 5), // parent never recorded (dropped by the cap)
		rec("c", "c", "selfie", 10),   // self-parented
	}
	n := BuildTree(spans)
	if n.SpanID != "synthetic-root" || n.Name != "trace" {
		t.Fatalf("multiple roots should gather under a synthetic root, got %q", n.SpanID)
	}
	if got := CountNodes(n); got != 4 { // 3 inputs + synthetic root
		t.Errorf("nodes = %d, want 4", got)
	}
	if len(n.Children) != 3 {
		t.Errorf("synthetic root has %d children, want 3", len(n.Children))
	}
	if !n.Start.Equal(spans[0].Start) {
		t.Errorf("synthetic root start %v, want earliest root start %v", n.Start, spans[0].Start)
	}
}

func TestBuildTreeDuplicatesCollapseFirstWins(t *testing.T) {
	spans := []Record{
		rec("root", "", "first", 0),
		rec("root", "", "second", 1),
		rec("kid", "root", "kid", 2),
	}
	n := BuildTree(spans)
	if n.Name != "first" {
		t.Errorf("duplicate collapse kept %q, want first-wins", n.Name)
	}
	if got := CountNodes(n); got != 2 {
		t.Errorf("nodes = %d, want 2 (dup collapsed)", got)
	}
}

func TestBuildTreeBreaksCycles(t *testing.T) {
	spans := []Record{
		rec("a", "b", "a", 0), // a ↔ b is a 2-cycle with no root
		rec("b", "a", "b", 1),
		rec("c", "a", "c", 2),
	}
	n := BuildTree(spans)
	if got := CountNodes(n); got != 3 {
		t.Fatalf("cycle breaking lost or duplicated spans: %d nodes, want 3", got)
	}
	if got := Depth(n); got < 1 {
		t.Errorf("depth = %d", got)
	}
}

func TestBuildTreeAnonymousIDs(t *testing.T) {
	spans := []Record{
		rec("", "", "x", 0),
		rec("", "", "y", 1),
	}
	n := BuildTree(spans)
	if got := CountNodes(n); got != 3 { // two anon spans + synthetic root
		t.Errorf("nodes = %d, want 3", got)
	}
}

// TestBuildTreeProperty is the damage-tolerance property test: random span
// sets — shuffled order, orphaned parents, self-parents, duplicate IDs,
// random cycles — must never panic, never lose a span and never duplicate
// one. The RNG is seeded so failures replay.
func TestBuildTreeProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := rnd.Intn(40)
		spans := make([]Record, 0, n)
		idPool := make([]string, 0, n)
		for i := 0; i < n; i++ {
			var id string
			switch {
			case rnd.Float64() < 0.1:
				id = "" // anonymous
			case rnd.Float64() < 0.15 && len(idPool) > 0:
				id = idPool[rnd.Intn(len(idPool))] // duplicate
			default:
				id = fmt.Sprintf("s%d", i)
			}
			var parent string
			switch {
			case rnd.Float64() < 0.2:
				parent = "" // root
			case rnd.Float64() < 0.3:
				parent = fmt.Sprintf("missing-%d", rnd.Intn(5)) // orphan
			case rnd.Float64() < 0.4:
				parent = id // self-parent
			case rnd.Float64() < 0.5:
				parent = fmt.Sprintf("s%d", rnd.Intn(n)) // may be later, a dup, or itself → cycles
			default:
				if len(idPool) > 0 {
					parent = idPool[rnd.Intn(len(idPool))]
				}
			}
			if id != "" {
				idPool = append(idPool, id)
			}
			spans = append(spans, rec(id, parent, fmt.Sprintf("op%d", i), rnd.Intn(1000)))
		}
		rnd.Shuffle(len(spans), func(i, j int) { spans[i], spans[j] = spans[j], spans[i] })

		root := BuildTree(spans) // must not panic
		if n == 0 {
			if root != nil {
				t.Fatalf("trial %d: empty input built a tree", trial)
			}
			continue
		}
		want := uniqueSpanCount(spans)
		got := CountNodes(root)
		if got != want && got != want+1 { // +1 when a synthetic root was added
			t.Fatalf("trial %d: tree holds %d nodes, want %d (or +1 synthetic): input %+v",
				trial, got, want, spans)
		}
		if d := Depth(root); d < 1 || d > got {
			t.Fatalf("trial %d: depth %d outside [1, %d]", trial, d, got)
		}
		assertNoSharedNodes(t, trial, root)
	}
}

// uniqueSpanCount mirrors BuildTree's normalization: blanks get fresh IDs,
// duplicates collapse.
func uniqueSpanCount(spans []Record) int {
	seen := map[string]bool{}
	anon := 0
	count := 0
	for _, r := range spans {
		id := r.SpanID
		if id == "" {
			anon++
			id = fmt.Sprintf("anon-%d", anon)
		}
		if !seen[id] {
			seen[id] = true
			count++
		}
	}
	return count
}

// assertNoSharedNodes walks the tree and fails if any node is reachable
// twice (a broken cycle that left a node under two parents).
func assertNoSharedNodes(t *testing.T, trial int, root *Node) {
	t.Helper()
	seen := map[*Node]bool{}
	var walk func(*Node)
	walk = func(n *Node) {
		if seen[n] {
			t.Fatalf("trial %d: node %s appears twice in the tree", trial, n.SpanID)
		}
		seen[n] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
}

// FuzzBuildTree feeds the assembler byte-derived span soup; the mutator
// explores ID collisions, parent references and orderings the property
// test's distribution misses.
func FuzzBuildTree(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{1, 0, 2, 1, 3, 2, 0, 0, 5, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Each byte pair is one span: (id selector, parent selector); the
		// low bits fold into a small ID space so collisions are common.
		spans := make([]Record, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			id := ""
			if data[i] != 0 {
				id = fmt.Sprintf("s%d", data[i]%16)
			}
			parent := ""
			if data[i+1] != 0 {
				parent = fmt.Sprintf("s%d", data[i+1]%16)
			}
			spans = append(spans, rec(id, parent, "op", int(data[i])))
		}
		root := BuildTree(spans)
		if len(spans) == 0 {
			if root != nil {
				t.Fatal("empty input built a tree")
			}
			return
		}
		want := uniqueSpanCount(spans)
		got := CountNodes(root)
		if got != want && got != want+1 {
			t.Fatalf("tree holds %d nodes, want %d (or +1 synthetic)", got, want)
		}
		assertNoSharedNodes(t, 0, root)
	})
}
