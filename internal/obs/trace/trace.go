// Package trace is a dependency-free hierarchical span layer for the rsmd
// serving stack. A span is one timed operation (id, parent, name, start,
// duration, attrs, status); spans nest through context.Context, so a root
// span per HTTP request (or per recovered job) accumulates children across
// the queue, the journal, the pipeline stages and the solver inner loops
// without any of those layers knowing about each other.
//
// Lifecycle: Store.StartRoot opens a trace; Start opens a child of whatever
// span the context carries (and is a no-op off a traced path, so
// instrumentation costs nothing when tracing is disabled). A trace stays
// open while any *holding* span — the root, plus spans started with
// WithHold, e.g. an async job that outlives its submitting request — is
// unfinished. When the last holder ends, still-open children are
// force-ended with status "unfinished", the trace is sealed, and it is
// offered to the store's bounded ring under the tail-sampling policy:
// error traces and slow-over-threshold traces are always kept, pinned
// traces (jobs) bypass the coin flip, and the rest survive with probability
// SampleRate.
//
// Every exported function and method is nil-receiver safe: a nil *Store
// never starts a trace, a nil *Span ignores every call, and Start without
// an active trace returns a nil span — call sites never branch on whether
// tracing is on.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Span statuses. A span is "ok" unless an error was recorded on it;
// "unfinished" marks spans force-ended at trace seal time (their owner
// never called End — a leak, a crash path, or a goroutine that outlived
// the trace).
const (
	StatusOK         = "ok"
	StatusError      = "error"
	StatusUnfinished = "unfinished"
)

// maxSpansPerTrace bounds one trace's span count so a pathological fit
// (huge max_lambda × folds) cannot grow a trace without bound. Spans beyond
// the cap are counted in Data.Dropped, not stored.
const maxSpansPerTrace = 512

// Record is one finished span, the immutable unit the store holds and the
// tree builder consumes.
type Record struct {
	SpanID   string         `json:"span_id"`
	ParentID string         `json:"parent_id,omitempty"`
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	Duration time.Duration  `json:"duration"`
	Status   string         `json:"status"`
	Error    string         `json:"error,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// String, Int, Float and Bool build typed attrs.
func String(k, v string) Attr        { return Attr{Key: k, Value: v} }
func Int(k string, v int) Attr       { return Attr{Key: k, Value: v} }
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }
func Bool(k string, v bool) Attr     { return Attr{Key: k, Value: v} }

// Span is one live timed operation. All methods are safe for concurrent
// use and safe on a nil receiver.
type Span struct {
	c    *collector
	hold bool

	mu    sync.Mutex
	rec   Record
	ended bool
}

// newID returns a 16-hex-char random identifier (shared by traces and
// spans).
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID keeps
		// the trace usable rather than panicking the serving path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// TraceID returns the span's trace identifier, or "" on a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.c.traceID
}

// SpanID returns the span's identifier, or "" on a nil span.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.rec.SpanID
}

// SetAttr annotates the span; calls after End are dropped.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.rec.Attrs == nil {
			s.rec.Attrs = make(map[string]any, 4)
		}
		s.rec.Attrs[key] = value
	}
	s.mu.Unlock()
}

// SetError marks the span failed. A nil error is ignored, so call sites
// can funnel their single error value through unconditionally.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.rec.Status = StatusError
		s.rec.Error = err.Error()
	}
	s.mu.Unlock()
}

// SetStatus overrides the span's status and message directly.
func (s *Span) SetStatus(status, msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.rec.Status = status
		s.rec.Error = msg
	}
	s.mu.Unlock()
}

// End finishes the span, fixing its duration. The first call wins; later
// calls (and calls after the trace sealed) are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.Duration = now.Sub(s.rec.Start)
	if s.rec.Status == "" {
		s.rec.Status = StatusOK
	}
	rec := cloneRecord(s.rec)
	s.mu.Unlock()
	s.c.finish(s, rec)
}

// EndErr is SetError + End in one call: the idiomatic tail of an
// instrumented operation that produced a single error value.
func (s *Span) EndErr(err error) {
	s.SetError(err)
	s.End()
}

// forceEnd seals a span that never ended, at trace-seal time. Called with
// the collector lock held; safe because End releases the span lock before
// taking the collector lock (no lock cycle). ok is false when the span
// ended concurrently — its own finish path owns the record then.
func (s *Span) forceEnd(now time.Time) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return Record{}, false
	}
	s.ended = true
	s.rec.Duration = now.Sub(s.rec.Start)
	s.rec.Status = StatusUnfinished
	return cloneRecord(s.rec), true
}

// cloneRecord deep-copies the attrs map so a sealed record can be read
// concurrently with no further coordination.
func cloneRecord(r Record) Record {
	if r.Attrs != nil {
		attrs := make(map[string]any, len(r.Attrs))
		for k, v := range r.Attrs {
			attrs[k] = v
		}
		r.Attrs = attrs
	}
	return r
}

// spanConfig accumulates Start options.
type spanConfig struct {
	start time.Time
	hold  bool
	pin   bool
	attrs []Attr
}

// Option configures a span at Start.
type Option func(*spanConfig)

// WithStart backdates the span to t — used for retroactive spans like
// queue wait, measured from the submit timestamp.
func WithStart(t time.Time) Option { return func(c *spanConfig) { c.start = t } }

// WithHold makes the span hold its trace open: the trace seals only after
// every holding span (the root included) has ended. Async jobs use it so
// the trace outlives the submitting request.
func WithHold() Option { return func(c *spanConfig) { c.hold = true } }

// WithPin exempts the whole trace from probabilistic tail sampling; error
// and slow traces are always kept regardless.
func WithPin() Option { return func(c *spanConfig) { c.pin = true } }

// WithAttrs seeds the span's annotations.
func WithAttrs(attrs ...Attr) Option {
	return func(c *spanConfig) { c.attrs = append(c.attrs, attrs...) }
}

type ctxKey struct{}

// ContextWithSpan attaches a span to the context; a nil span returns ctx
// unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the context's active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a child of the context's active span. Off a traced path (no
// active span, or tracing disabled) it returns ctx unchanged and a nil
// span, so instrumentation call sites never branch.
func Start(ctx context.Context, name string, opts ...Option) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.c.startSpan(name, parent.SpanID(), opts...)
	if s == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, s), s
}

// collector accumulates one trace's spans until its last holder ends.
type collector struct {
	store   *Store
	traceID string

	mu      sync.Mutex
	spans   []Record
	live    map[*Span]struct{}
	holds   int
	pinned  bool
	sealed  bool
	dropped int
	start   time.Time
}

// startSpan registers a new live span on the collector. A span started
// after the trace sealed (a goroutine that outlived the last holder) is
// still returned — its methods work — but its record is discarded at End.
func (c *collector) startSpan(name, parentID string, opts ...Option) *Span {
	cfg := spanConfig{start: time.Now()}
	for _, o := range opts {
		o(&cfg)
	}
	s := &Span{
		c:    c,
		hold: cfg.hold,
		rec: Record{
			SpanID:   newID(),
			ParentID: parentID,
			Name:     name,
			Start:    cfg.start,
		},
	}
	for _, a := range cfg.attrs {
		if s.rec.Attrs == nil {
			s.rec.Attrs = make(map[string]any, len(cfg.attrs))
		}
		s.rec.Attrs[a.Key] = a.Value
	}
	c.mu.Lock()
	if cfg.pin {
		c.pinned = true
	}
	if !c.sealed {
		c.live[s] = struct{}{}
		if cfg.hold {
			c.holds++
		}
	} else {
		s.hold = false // a hold on a sealed trace must not underflow holds
	}
	c.mu.Unlock()
	return s
}

// finish lands one ended span's record and seals the trace when the last
// holder is gone.
func (c *collector) finish(s *Span, rec Record) {
	c.mu.Lock()
	delete(c.live, s)
	if c.sealed {
		c.mu.Unlock()
		return
	}
	if len(c.spans) < maxSpansPerTrace {
		c.spans = append(c.spans, rec)
	} else {
		c.dropped++
	}
	var data *Data
	if s.hold {
		c.holds--
		if c.holds == 0 {
			data = c.sealLocked(time.Now())
		}
	}
	pinned := c.pinned
	c.mu.Unlock()
	if data != nil {
		c.store.offer(data, pinned)
	}
}

// sealLocked force-ends the remaining live spans and freezes the trace
// into its Data. Caller holds c.mu.
func (c *collector) sealLocked(now time.Time) *Data {
	for sp := range c.live {
		// Lock order is collector → span here; End goes span → (unlock) →
		// collector, so there is no cycle. A span that ended concurrently
		// reports !ok and its in-flight finish call sees sealed.
		if rec, ok := sp.forceEnd(now); ok {
			if len(c.spans) < maxSpansPerTrace {
				c.spans = append(c.spans, rec)
			} else {
				c.dropped++
			}
		}
	}
	c.live = map[*Span]struct{}{}
	c.sealed = true
	return c.buildDataLocked(true)
}

// buildDataLocked freezes the current span set into a Data snapshot.
// Caller holds c.mu.
func (c *collector) buildDataLocked(complete bool) *Data {
	d := &Data{
		TraceID:  c.traceID,
		Start:    c.start,
		Complete: complete,
		Dropped:  c.dropped,
		Spans:    append([]Record(nil), c.spans...),
	}
	end := c.start
	for i := range d.Spans {
		r := &d.Spans[i]
		if r.ParentID == "" && d.Name == "" {
			d.Name = r.Name
			if d.Status == "" {
				// The root's status seeds the trace status, but never
				// downgrades an error a child already contributed.
				d.Status = r.Status
			}
		}
		if r.Status == StatusError {
			d.Status = StatusError
		}
		if e := r.Start.Add(r.Duration); e.After(end) {
			end = e
		}
	}
	if d.Name == "" {
		d.Name = "trace"
	}
	if d.Status == "" {
		d.Status = StatusUnfinished
	}
	d.Duration = end.Sub(c.start)
	return d
}

// snapshot returns a live (unsealed) view of the trace: finished spans
// plus the in-flight ones rendered as unfinished-so-far.
func (c *collector) snapshot() *Data {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	saved := c.spans
	c.spans = append([]Record(nil), saved...)
	for sp := range c.live {
		sp.mu.Lock()
		if !sp.ended {
			rec := cloneRecord(sp.rec)
			rec.Duration = now.Sub(rec.Start)
			rec.Status = StatusUnfinished
			c.spans = append(c.spans, rec)
		}
		sp.mu.Unlock()
	}
	d := c.buildDataLocked(false)
	c.spans = saved
	return d
}

// Data is one trace's frozen (or live-snapshot) state.
type Data struct {
	TraceID string    `json:"trace_id"`
	Name    string    `json:"name"`
	Status  string    `json:"status"`
	Start   time.Time `json:"start"`
	// Duration spans from the root start to the latest span end.
	Duration time.Duration `json:"duration"`
	// Complete is false for a live snapshot of a still-open trace.
	Complete bool `json:"complete"`
	// Dropped counts spans discarded by the per-trace cap.
	Dropped int      `json:"dropped,omitempty"`
	Spans   []Record `json:"spans"`
}
