package trace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// keepAll builds a store that keeps every sealed trace — the default
// policy most lifecycle tests want.
func keepAll(capacity int) *Store {
	return NewStore(Config{Capacity: capacity})
}

func TestTraceLifecycle(t *testing.T) {
	st := keepAll(8)
	ctx, root := st.StartRoot(context.Background(), "POST /v1/fit",
		WithAttrs(String("method", "POST")))
	if root == nil {
		t.Fatal("StartRoot returned nil span on an enabled store")
	}
	traceID := root.TraceID()
	if traceID == "" {
		t.Fatal("root span has no trace id")
	}

	ctx2, child := Start(ctx, "queue.wait")
	child.SetAttr("depth", 3)
	child.End()
	_, grand := Start(ctx2, "fit", WithAttrs(Int("lambda", 5)))
	grand.EndErr(nil)
	root.End()

	d, ok := st.Get(traceID)
	if !ok {
		t.Fatalf("sealed trace %s not in store", traceID)
	}
	if !d.Complete {
		t.Error("sealed trace reports Complete=false")
	}
	if d.Name != "POST /v1/fit" {
		t.Errorf("trace name %q, want root span name", d.Name)
	}
	if d.Status != StatusOK {
		t.Errorf("trace status %q, want ok", d.Status)
	}
	if len(d.Spans) != 3 {
		t.Fatalf("sealed trace holds %d spans, want 3", len(d.Spans))
	}
	tree := BuildTree(d.Spans)
	if got := Depth(tree); got != 3 {
		t.Errorf("tree depth %d, want 3 (root → queue.wait → fit)", got)
	}
	if got := CountNodes(tree); got != 3 {
		t.Errorf("tree nodes %d, want 3", got)
	}
	st2 := st.Stats()
	if !st2.Enabled || st2.Kept != 1 || st2.Stored != 1 || st2.Open != 0 {
		t.Errorf("stats %+v, want enabled, kept=1, stored=1, open=0", st2)
	}
}

func TestSpanError(t *testing.T) {
	st := keepAll(4)
	ctx, root := st.StartRoot(context.Background(), "route")
	_, child := Start(ctx, "boom")
	child.EndErr(errors.New("kaput"))
	root.End()

	d, _ := st.Get(root.TraceID())
	if d.Status != StatusError {
		t.Errorf("trace with failed span has status %q, want error", d.Status)
	}
	var found bool
	for _, r := range d.Spans {
		if r.Name == "boom" {
			found = true
			if r.Status != StatusError || r.Error != "kaput" {
				t.Errorf("failed span %+v, want status=error error=kaput", r)
			}
		}
	}
	if !found {
		t.Fatal("failed span missing from sealed trace")
	}
}

func TestNilSafety(t *testing.T) {
	var st *Store
	ctx, span := st.StartRoot(context.Background(), "x")
	if span != nil {
		t.Fatal("nil store started a trace")
	}
	if _, s := Start(ctx, "child"); s != nil {
		t.Fatal("Start off an untraced context returned a span")
	}
	// Every span method must be a no-op on nil, not a panic.
	span.SetAttr("k", 1)
	span.SetError(errors.New("x"))
	span.SetStatus("error", "x")
	span.End()
	span.EndErr(nil)
	if span.TraceID() != "" || span.SpanID() != "" {
		t.Error("nil span has identifiers")
	}
	if _, ok := st.Get("any"); ok {
		t.Error("nil store Get returned a trace")
	}
	if got := st.List(Filter{}); got != nil {
		t.Error("nil store List returned traces")
	}
	if s := st.Stats(); s.Enabled {
		t.Error("nil store Stats reports enabled")
	}
	if st.SlowThreshold() != 0 {
		t.Error("nil store has a slow threshold")
	}
}

func TestNegativeCapacityDisables(t *testing.T) {
	if st := NewStore(Config{Capacity: -1}); st != nil {
		t.Fatal("negative capacity should return a nil (disabled) store")
	}
}

func TestHoldKeepsTraceOpen(t *testing.T) {
	st := keepAll(4)
	ctx, root := st.StartRoot(context.Background(), "POST /v1/fit")
	_, job := Start(ctx, "job", WithHold(), WithPin())
	root.End() // the submitting request returns; the job runs on

	id := root.TraceID()
	d, ok := st.Get(id)
	if !ok {
		t.Fatal("open trace not visible through Get")
	}
	if d.Complete {
		t.Fatal("trace sealed while a holding span is still open")
	}
	if st.Stats().Open != 1 {
		t.Fatalf("stats.Open = %d, want 1", st.Stats().Open)
	}

	job.End()
	d, ok = st.Get(id)
	if !ok || !d.Complete {
		t.Fatalf("trace not sealed after last holder ended (ok=%v complete=%v)", ok, d != nil && d.Complete)
	}
	if st.Stats().Open != 0 {
		t.Errorf("stats.Open = %d after seal, want 0", st.Stats().Open)
	}
}

func TestSealForceEndsLeakedSpans(t *testing.T) {
	st := keepAll(4)
	ctx, root := st.StartRoot(context.Background(), "route")
	_, leaked := Start(ctx, "leaked")
	_ = leaked // never ended
	root.End()

	d, _ := st.Get(root.TraceID())
	var found bool
	for _, r := range d.Spans {
		if r.Name == "leaked" {
			found = true
			if r.Status != StatusUnfinished {
				t.Errorf("leaked span status %q, want unfinished", r.Status)
			}
		}
	}
	if !found {
		t.Fatal("leaked span missing from sealed trace")
	}
	// Ending it after the seal must not corrupt the sealed record.
	leaked.End()
	d2, _ := st.Get(root.TraceID())
	if len(d2.Spans) != len(d.Spans) {
		t.Errorf("post-seal End changed the sealed trace: %d → %d spans", len(d.Spans), len(d2.Spans))
	}
}

func TestWithStartBackdates(t *testing.T) {
	st := keepAll(4)
	past := time.Now().Add(-3 * time.Second)
	ctx, root := st.StartRoot(context.Background(), "route")
	_, qw := Start(ctx, "queue.wait", WithStart(past))
	qw.End()
	root.End()

	d, _ := st.Get(root.TraceID())
	for _, r := range d.Spans {
		if r.Name == "queue.wait" {
			if !r.Start.Equal(past) {
				t.Errorf("backdated span starts at %v, want %v", r.Start, past)
			}
			if r.Duration < 2*time.Second {
				t.Errorf("backdated span duration %v, want ≥ 2s", r.Duration)
			}
		}
	}
}

func TestTailSampling(t *testing.T) {
	// Tail-only policy: rate ≤ 0 keeps nothing but errors, slow traces
	// and pinned traces.
	st := NewStore(Config{Capacity: 16, SampleRate: -1, SlowThreshold: time.Hour})

	_, fast := st.StartRoot(context.Background(), "fast-ok")
	fast.End()
	if _, ok := st.Get(fast.TraceID()); ok {
		t.Error("fast ok trace survived a tail-only policy")
	}

	_, failed := st.StartRoot(context.Background(), "failed")
	failed.SetError(errors.New("x"))
	failed.End()
	if _, ok := st.Get(failed.TraceID()); !ok {
		t.Error("error trace was sampled out")
	}

	ctx, pinnedRoot := st.StartRoot(context.Background(), "job-root")
	_, pin := Start(ctx, "job", WithPin())
	pin.End()
	pinnedRoot.End()
	if _, ok := st.Get(pinnedRoot.TraceID()); !ok {
		t.Error("pinned trace was sampled out")
	}

	stats := st.Stats()
	if stats.SampledOut != 1 || stats.Kept != 2 {
		t.Errorf("stats kept=%d sampledOut=%d, want 2/1", stats.Kept, stats.SampledOut)
	}
}

func TestSlowTracesAlwaysKept(t *testing.T) {
	st := NewStore(Config{Capacity: 16, SampleRate: -1, SlowThreshold: time.Millisecond})
	_, slow := st.StartRoot(context.Background(), "slow")
	time.Sleep(3 * time.Millisecond)
	slow.End()
	if _, ok := st.Get(slow.TraceID()); !ok {
		t.Error("slow-over-threshold trace was sampled out")
	}
}

func TestSamplingCoinFlip(t *testing.T) {
	// A deterministic "coin": first flip keeps (0.0 < 0.5), second drops.
	flips := []float64{0.0, 0.9}
	i := 0
	st := NewStore(Config{Capacity: 16, SampleRate: 0.5, SlowThreshold: time.Hour,
		Rand: func() float64 { v := flips[i%len(flips)]; i++; return v }})
	_, a := st.StartRoot(context.Background(), "a")
	a.End()
	_, b := st.StartRoot(context.Background(), "b")
	b.End()
	if _, ok := st.Get(a.TraceID()); !ok {
		t.Error("kept-side coin flip dropped the trace")
	}
	if _, ok := st.Get(b.TraceID()); ok {
		t.Error("dropped-side coin flip kept the trace")
	}
}

func TestRingEviction(t *testing.T) {
	st := keepAll(2)
	ids := make([]string, 3)
	for i := range ids {
		_, root := st.StartRoot(context.Background(), fmt.Sprintf("t%d", i))
		ids[i] = root.TraceID()
		root.End()
	}
	if _, ok := st.Get(ids[0]); ok {
		t.Error("oldest trace not evicted from a full ring")
	}
	for _, id := range ids[1:] {
		if _, ok := st.Get(id); !ok {
			t.Errorf("trace %s missing from ring", id)
		}
	}
	stats := st.Stats()
	if stats.Evicted != 1 || stats.Stored != 2 {
		t.Errorf("stats evicted=%d stored=%d, want 1/2", stats.Evicted, stats.Stored)
	}
	// List is newest-first.
	list := st.List(Filter{})
	if len(list) != 2 || list[0].Name != "t2" || list[1].Name != "t1" {
		t.Errorf("List order %v, want [t2 t1]", names(list))
	}
}

func names(list []*Data) []string {
	out := make([]string, len(list))
	for i, d := range list {
		out[i] = d.Name
	}
	return out
}

func TestListFilters(t *testing.T) {
	st := keepAll(16)
	_, ok1 := st.StartRoot(context.Background(), "GET /v1/models")
	ok1.End()
	_, failed := st.StartRoot(context.Background(), "POST /v1/fit")
	failed.SetError(errors.New("x"))
	failed.End()

	if got := st.List(Filter{Name: "/v1/fit"}); len(got) != 1 || got[0].Name != "POST /v1/fit" {
		t.Errorf("name filter returned %v", names(got))
	}
	if got := st.List(Filter{Status: StatusError}); len(got) != 1 || got[0].Status != StatusError {
		t.Errorf("status filter returned %v", names(got))
	}
	if got := st.List(Filter{MinDuration: time.Hour}); len(got) != 0 {
		t.Errorf("min-duration filter returned %v", names(got))
	}
	if got := st.List(Filter{Limit: 1}); len(got) != 1 {
		t.Errorf("limit filter returned %d traces, want 1", len(got))
	}
}

func TestPerTraceSpanCap(t *testing.T) {
	st := keepAll(4)
	ctx, root := st.StartRoot(context.Background(), "huge")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, s := Start(ctx, "leaf")
		s.End()
	}
	root.End()
	d, _ := st.Get(root.TraceID())
	if len(d.Spans) != maxSpansPerTrace {
		t.Errorf("sealed trace holds %d spans, want cap %d", len(d.Spans), maxSpansPerTrace)
	}
	if d.Dropped != 11 { // 10 extra leaves + the root over the cap
		t.Errorf("dropped = %d, want 11", d.Dropped)
	}
}

// TestStoreConcurrentHammer drives finishes, live snapshots, scrapes and
// listing concurrently; run under -race (make race covers this package) it
// proves the collector/store locking. See also the lock-order note on
// Span.forceEnd.
func TestStoreConcurrentHammer(t *testing.T) {
	st := NewStore(Config{Capacity: 32, SampleRate: 0.5, SlowThreshold: time.Hour})
	const traces = 40
	var wg sync.WaitGroup
	ids := make(chan string, traces)
	for i := 0; i < traces; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, root := st.StartRoot(context.Background(), fmt.Sprintf("t%d", i))
			ids <- root.TraceID()
			var cwg sync.WaitGroup
			for j := 0; j < 8; j++ {
				cwg.Add(1)
				go func(j int) {
					defer cwg.Done()
					_, s := Start(ctx, "child", WithAttrs(Int("j", j)))
					s.SetAttr("k", j)
					if j%3 == 0 {
						s.EndErr(errors.New("x"))
						return
					}
					if j%5 == 0 {
						return // leaked on purpose: seal must force-end it
					}
					s.End()
				}(j)
			}
			cwg.Wait()
			root.End()
		}(i)
	}
	// Concurrent readers: Get on live and sealed traces, List, Stats.
	done := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-done:
					return
				case id := <-ids:
					if d, ok := st.Get(id); ok && len(d.Spans) > 9 {
						panic("trace grew beyond its span count")
					}
				default:
					st.List(Filter{Limit: 10})
					st.Stats()
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	rwg.Wait()
	stats := st.Stats()
	if stats.Open != 0 {
		t.Errorf("stats.Open = %d after all traces ended, want 0", stats.Open)
	}
	if stats.Kept+stats.SampledOut != traces {
		t.Errorf("kept+sampledOut = %d, want %d", stats.Kept+stats.SampledOut, traces)
	}
}
