package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Exemplar ties one observed value to the trace that produced it — the
// OpenMetrics bridge from a histogram bucket back to /v1/traces. The zero
// Exemplar (empty TraceID) means "none recorded".
type Exemplar struct {
	TraceID string
	Value   float64
	Time    time.Time
}

// Histogram is a fixed-bucket histogram safe for concurrent use. Bucket
// counts are stored per interval internally and rendered cumulatively on
// snapshot, matching the Prometheus `le` contract (each bucket counts every
// observation ≤ its bound, and the implicit +Inf bucket equals the total
// observation count).
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit

	mu        sync.Mutex
	counts    []int64 // len(bounds)+1; last is the +Inf overflow interval
	sum       float64
	count     int64
	exemplars []Exemplar // lazily allocated, one per interval; last wins
}

// NewHistogram builds a histogram over the given strictly ascending upper
// bounds. It panics on an unsorted bound list — bucket layouts are
// compile-time decisions, not runtime input.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.ObserveExemplar(v, "")
}

// ObserveExemplar records one value and, when traceID is non-empty, stamps
// it as the bucket's exemplar (last observation wins — recency beats
// recording the extreme, because the operator's question is "show me a
// recent request that landed here").
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	if traceID != "" {
		if h.exemplars == nil {
			h.exemplars = make([]Exemplar, len(h.counts))
		}
		h.exemplars[i] = Exemplar{TraceID: traceID, Value: v, Time: time.Now()}
	}
	h.mu.Unlock()
}

// Snapshot returns a consistent cumulative view of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := cumulate(h.bounds, h.counts, h.sum, h.count)
	if h.exemplars != nil {
		s.Exemplars = append([]Exemplar(nil), h.exemplars...)
	}
	return s
}

// HistogramSnapshot is a point-in-time cumulative histogram view.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; the +Inf bucket is implicit.
	Bounds []float64
	// Cumulative[i] counts observations ≤ Bounds[i]; the final entry is the
	// +Inf bucket and always equals Count.
	Cumulative []int64
	// Sum is the sum of all observed values.
	Sum float64
	// Count is the total number of observations.
	Count int64
	// Exemplars, when non-nil, holds one entry per bucket interval (the
	// final entry belongs to +Inf); zero entries mean no exemplar for that
	// bucket. Rendered as OpenMetrics `# {trace_id="..."}` suffixes.
	Exemplars []Exemplar
}

// cumulate converts per-interval counts into a cumulative snapshot.
func cumulate(bounds []float64, counts []int64, sum float64, count int64) HistogramSnapshot {
	cum := make([]int64, len(counts))
	var running int64
	for i, c := range counts {
		running += c
		cum[i] = running
	}
	return HistogramSnapshot{
		Bounds:     append([]float64(nil), bounds...),
		Cumulative: cum,
		Sum:        sum,
		Count:      count,
	}
}

// CumulativeSnapshot builds a snapshot from externally held per-interval
// counts (len(bounds)+1, last interval is the +Inf overflow). It lets
// callers that guard their counters with their own lock render the same
// cumulative views as Histogram.
func CumulativeSnapshot(bounds []float64, counts []int64, sum float64) HistogramSnapshot {
	var total int64
	for _, c := range counts {
		total += c
	}
	return cumulate(bounds, counts, sum, total)
}

// JSONBuckets renders the snapshot's cumulative buckets as the expvar-style
// map used by the /metrics JSON view: {"le_0.005": 3, ..., "le_inf": 17}.
func (s HistogramSnapshot) JSONBuckets() map[string]int64 {
	out := make(map[string]int64, len(s.Cumulative))
	for i, b := range s.Bounds {
		out["le_"+strconv.FormatFloat(b, 'g', -1, 64)] = s.Cumulative[i]
	}
	out["le_inf"] = s.Cumulative[len(s.Cumulative)-1]
	return out
}

// JSON renders the full snapshot (cumulative buckets, sum, count) as a
// JSON-encodable tree.
func (s HistogramSnapshot) JSON() map[string]any {
	return map[string]any{
		"count":   s.Count,
		"sum":     s.Sum,
		"buckets": s.JSONBuckets(),
	}
}
