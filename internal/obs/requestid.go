package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// RequestIDHeader is the trace-propagation header: the rsm client stamps it
// on every exchange, the rsmd middleware honors or assigns it, and every
// response echoes it back.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds accepted client-supplied IDs so a hostile header
// cannot bloat logs or job records.
const maxRequestIDLen = 64

// NewRequestID returns a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is still
		// serviceable for correlation if it somehow does.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID validates a client-supplied request ID: printable,
// header-safe tokens up to 64 chars pass through; anything else returns ""
// so the caller assigns a fresh ID instead of propagating junk into logs.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return ""
		}
	}
	return id
}

// WithRequestID stores the request ID in the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request ID, or "" when none was attached.
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
