package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders Prometheus text exposition format (version 0.0.4). It
// accumulates the first write error and keeps going, so call sites can emit
// the whole page and check Flush once.
type PromWriter struct {
	w   *bufio.Writer
	err error
}

// NewPromWriter wraps w for exposition output.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w)}
}

// printf appends formatted output, latching the first error.
func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Meta emits the # HELP and # TYPE comments for a metric family. typ is
// counter|gauge|histogram|summary|untyped.
func (p *PromWriter) Meta(name, typ, help string) {
	if help != "" {
		p.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

// Sample emits one sample line. labels is a pre-rendered pair list (use
// Labels), "" for none.
func (p *PromWriter) Sample(name, labels string, v float64) {
	if labels == "" {
		p.printf("%s %s\n", name, FormatValue(v))
		return
	}
	p.printf("%s{%s} %s\n", name, labels, FormatValue(v))
}

// Histogram emits a full cumulative histogram family: one _bucket line per
// bound plus the mandatory le="+Inf" bucket, then _sum and _count. labels
// are merged before the le pair. Buckets whose interval carries an exemplar
// get an OpenMetrics-style ` # {trace_id="..."} <value> <ts>` suffix.
func (p *PromWriter) Histogram(name, labels string, s HistogramSnapshot) {
	join := func(le string) string {
		pair := `le="` + le + `"`
		if labels == "" {
			return pair
		}
		return labels + "," + pair
	}
	exemplarAt := func(i int) Exemplar {
		if i < len(s.Exemplars) {
			return s.Exemplars[i]
		}
		return Exemplar{}
	}
	for i, b := range s.Bounds {
		p.bucket(name+"_bucket", join(FormatValue(b)), float64(s.Cumulative[i]), exemplarAt(i))
	}
	last := len(s.Cumulative) - 1
	p.bucket(name+"_bucket", join("+Inf"), float64(s.Cumulative[last]), exemplarAt(last))
	p.Sample(name+"_sum", labels, s.Sum)
	p.Sample(name+"_count", labels, float64(s.Count))
}

// bucket emits one histogram bucket line with an optional exemplar suffix.
func (p *PromWriter) bucket(name, labels string, v float64, ex Exemplar) {
	if ex.TraceID == "" {
		p.Sample(name, labels, v)
		return
	}
	ts := strconv.FormatFloat(float64(ex.Time.UnixNano())/1e9, 'f', 3, 64)
	p.printf("%s{%s} %s # {trace_id=\"%s\"} %s %s\n",
		name, labels, FormatValue(v), escapeLabel(ex.TraceID), FormatValue(ex.Value), ts)
}

// Flush drains the buffer and reports the first error encountered.
func (p *PromWriter) Flush() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// Label renders one escaped label pair, e.g. Label("route", `GET /x`) →
// `route="GET /x"`.
func Label(name, value string) string {
	return name + `="` + escapeLabel(value) + `"`
}

// Labels joins alternating name, value arguments into a rendered pair list.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: Labels needs name/value pairs")
	}
	parts := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		parts = append(parts, Label(kv[i], kv[i+1]))
	}
	return strings.Join(parts, ",")
}

// FormatValue renders a float the way the exposition format expects,
// including +Inf/-Inf/NaN spellings.
func FormatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition grammar.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP text per the exposition grammar.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// Exposition-validation machinery: a promtool-lite lint used by the obs
// tests and the `make obs` CI gate. It checks line syntax, metric-name
// grammar, TYPE placement, and — the part that actually catches bugs — the
// histogram contract: per-series cumulative `le` buckets ending in a +Inf
// bucket that matches _count.

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRE     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)(?:\s+(-?\d+))?$`)
	labelPairRE  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// histSeries accumulates one histogram series' buckets during validation.
type histSeries struct {
	lastLE    float64
	lastCount float64
	sawInf    bool
	infCount  float64
	hasCount  bool
	count     float64
}

// ValidateExposition parses Prometheus text exposition and returns an error
// naming the first malformed line or violated histogram invariant. It is
// deliberately strict about the things rsmd emits (it is a lint for our own
// output, not a general scraper): every sample must follow a # TYPE for its
// family, histogram buckets must be cumulative and ascending in le, the
// +Inf bucket must be present, and _count must equal it.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := make(map[string]string)      // family → declared type
	hists := make(map[string]*histSeries) // family + label-set (sans le) → state
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, types, hists); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, h := range hists {
		if !h.sawInf {
			return fmt.Errorf("histogram series %s has no le=\"+Inf\" bucket", key)
		}
		if h.hasCount && h.count != h.infCount {
			return fmt.Errorf("histogram series %s: _count %g != +Inf bucket %g", key, h.count, h.infCount)
		}
	}
	return nil
}

// validateComment checks # HELP / # TYPE lines and records declared types.
func validateComment(line string, types map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment; legal
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !metricNameRE.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !metricNameRE.MatchString(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if _, dup := types[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		types[fields[2]] = fields[3]
	}
	return nil
}

// familyOf strips histogram/summary sample suffixes down to the declared
// family name.
func familyOf(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// validateSample checks one sample line and feeds histogram bookkeeping.
func validateSample(line string, types map[string]string, hists map[string]*histSeries) error {
	sample, exemplar, hasExemplar := splitExemplar(line)
	m := sampleRE.FindStringSubmatch(sample)
	if m == nil {
		return fmt.Errorf("malformed sample line %q", line)
	}
	name, rawLabels, rawValue := m[1], m[2], m[3]
	value, err := parseValue(rawValue)
	if err != nil {
		return fmt.Errorf("sample %s: %w", name, err)
	}
	labels, err := parseLabels(rawLabels)
	if err != nil {
		return fmt.Errorf("sample %s: %w", name, err)
	}
	family := familyOf(name, types)
	typ, declared := types[family]
	if !declared {
		return fmt.Errorf("sample %s has no preceding # TYPE", name)
	}
	if hasExemplar {
		if typ != "histogram" || !strings.HasSuffix(name, "_bucket") {
			return fmt.Errorf("sample %s: exemplar on a non-bucket line", name)
		}
		if err := validateExemplar(exemplar); err != nil {
			return fmt.Errorf("sample %s: %w", name, err)
		}
	}
	if typ != "histogram" {
		return nil
	}
	key := family + "{" + labelsKeyWithout(labels, "le") + "}"
	h := hists[key]
	if h == nil {
		h = &histSeries{lastLE: math.Inf(-1)}
		hists[key] = h
	}
	switch {
	case strings.HasSuffix(name, "_bucket"):
		leStr, ok := labels["le"]
		if !ok {
			return fmt.Errorf("histogram bucket %s has no le label", name)
		}
		le, err := parseValue(leStr)
		if err != nil {
			return fmt.Errorf("histogram bucket %s: bad le %q", name, leStr)
		}
		if le <= h.lastLE {
			return fmt.Errorf("histogram %s: le %q not ascending", key, leStr)
		}
		if value < h.lastCount {
			return fmt.Errorf("histogram %s: bucket le=%q count %g below previous %g (buckets must be cumulative)",
				key, leStr, value, h.lastCount)
		}
		h.lastLE, h.lastCount = le, value
		if math.IsInf(le, 1) {
			h.sawInf = true
			h.infCount = value
		}
	case strings.HasSuffix(name, "_count"):
		h.hasCount = true
		h.count = value
	}
	return nil
}

// splitExemplar separates a sample line from its OpenMetrics exemplar
// suffix. The split point is a ` # ` outside quoted label values — a naive
// strings.Index would misfire on label values that themselves contain `#`
// (route labels like "GET /v1/jobs/{id}" are why this is quote-aware).
func splitExemplar(line string) (sample, exemplar string, ok bool) {
	inQuotes, escaped := false, false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\' && inQuotes:
			escaped = true
		case c == '"':
			inQuotes = !inQuotes
		case c == '#' && !inQuotes && i > 0 && line[i-1] == ' ':
			return strings.TrimRight(line[:i], " "), strings.TrimSpace(line[i+1:]), true
		}
	}
	return line, "", false
}

// validateExemplar checks the `{label="v",...} value [timestamp]` grammar
// of an exemplar suffix and requires the trace_id label rsmd emits.
func validateExemplar(ex string) error {
	if !strings.HasPrefix(ex, "{") {
		return fmt.Errorf("malformed exemplar %q: missing label braces", ex)
	}
	end := -1
	inQuotes, escaped := false, false
	for i := 1; i < len(ex); i++ {
		c := ex[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\' && inQuotes:
			escaped = true
		case c == '"':
			inQuotes = !inQuotes
		case c == '}' && !inQuotes:
			end = i
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return fmt.Errorf("malformed exemplar %q: unterminated label braces", ex)
	}
	labels, err := parseLabels(ex[1:end])
	if err != nil {
		return fmt.Errorf("exemplar labels: %w", err)
	}
	if labels["trace_id"] == "" {
		return fmt.Errorf("exemplar %q has no trace_id label", ex)
	}
	fields := strings.Fields(ex[end+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("exemplar %q: want value and optional timestamp, got %d fields", ex, len(fields))
	}
	if _, err := parseValue(fields[0]); err != nil {
		return fmt.Errorf("exemplar value: %w", err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("exemplar timestamp: %w", err)
		}
	}
	return nil
}

// parseValue parses an exposition float, accepting the +Inf/-Inf/NaN
// spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels splits a rendered label list back into a map.
func parseLabels(raw string) (map[string]string, error) {
	labels := make(map[string]string)
	if raw == "" {
		return labels, nil
	}
	for _, pair := range splitLabelPairs(raw) {
		m := labelPairRE.FindStringSubmatch(pair)
		if m == nil {
			return nil, fmt.Errorf("malformed label pair %q", pair)
		}
		labels[m[1]] = m[2]
	}
	return labels, nil
}

// splitLabelPairs splits on commas outside quoted values.
func splitLabelPairs(raw string) []string {
	var parts []string
	var sb strings.Builder
	inQuotes, escaped := false, false
	for _, r := range raw {
		switch {
		case escaped:
			escaped = false
			sb.WriteRune(r)
		case r == '\\' && inQuotes:
			escaped = true
			sb.WriteRune(r)
		case r == '"':
			inQuotes = !inQuotes
			sb.WriteRune(r)
		case r == ',' && !inQuotes:
			parts = append(parts, sb.String())
			sb.Reset()
		default:
			sb.WriteRune(r)
		}
	}
	if sb.Len() > 0 {
		parts = append(parts, sb.String())
	}
	return parts
}

// labelsKeyWithout renders a deterministic key of the label set minus one
// label, for grouping histogram series.
func labelsKeyWithout(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}
