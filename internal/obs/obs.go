// Package obs is the cross-cutting observability layer shared by the
// serving stack (cmd/rsmd, internal/server, internal/registry, rsm): it
// provides structured logging on log/slog with context propagation,
// X-Request-Id generation and plumbing, self-locking latency/size
// histograms with Prometheus-correct cumulative buckets, a text-format
// exposition writer plus a promtool-style validator, and runtime gauges.
// Everything is stdlib-only, mirroring the rest of the repository.
//
// The conventions it encodes:
//
//   - every HTTP exchange carries an X-Request-Id (client-supplied or
//     server-assigned) that is echoed on the response, stamped on every log
//     line touching the request, and recorded on any fit job it spawns;
//   - histograms are exposed in two views — the expvar-style JSON tree and
//     Prometheus text exposition — and both render *cumulative* `le`
//     buckets, exactly as the Prometheus histogram contract requires;
//   - loggers travel in the context; code below the middleware asks
//     obs.Log(ctx) and transparently inherits the request's attributes.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ctxKey keys the package's context values.
type ctxKey int

const (
	loggerKey ctxKey = iota
	requestIDKey
)

// NewLogger builds a leveled slog.Logger writing to w. format is "text" or
// "json"; anything else falls back to text.
func NewLogger(w io.Writer, level slog.Level, format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// ParseLevel maps a flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// WithLogger stores l in the context for retrieval with Log.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// Log returns the context's logger, falling back to slog.Default. Handlers
// and workers use it so every line inherits the request attributes
// (request_id, route, ...) attached by the middleware.
func Log(ctx context.Context) *slog.Logger {
	if ctx != nil {
		if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
			return l
		}
	}
	return slog.Default()
}
