package obs

import (
	"bytes"
	"context"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNewRequestIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if SanitizeRequestID(id) != id {
			t.Fatalf("generated id %q does not survive sanitization", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc-123_x.y:z", "abc-123_x.y:z"},
		{"", ""},
		{"has space", ""},
		{"newline\n", ""},
		{`quote"`, ""},
		{strings.Repeat("a", 64), strings.Repeat("a", 64)},
		{strings.Repeat("a", 65), ""},
	}
	for _, tc := range cases {
		if got := SanitizeRequestID(tc.in); got != tc.want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRequestIDContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Fatal("empty context should carry no request id")
	}
	ctx = WithRequestID(ctx, "req-1")
	if got := RequestID(ctx); got != "req-1" {
		t.Fatalf("RequestID = %q, want req-1", got)
	}
}

func TestLogContextFallsBackToDefault(t *testing.T) {
	if Log(context.Background()) != slog.Default() {
		t.Fatal("bare context should yield slog.Default")
	}
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo, "text")
	ctx := WithLogger(context.Background(), l)
	Log(ctx).Info("hello", "request_id", "r1")
	if out := buf.String(); !strings.Contains(out, "request_id=r1") {
		t.Fatalf("log line %q missing request_id attr", out)
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel should reject unknown levels")
	}
}

func TestHistogramCumulativeSnapshot(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantCum := []int64{1, 3, 4, 5}
	if len(s.Cumulative) != len(wantCum) {
		t.Fatalf("cumulative %v, want %v", s.Cumulative, wantCum)
	}
	for i, w := range wantCum {
		if s.Cumulative[i] != w {
			t.Fatalf("cumulative %v, want %v", s.Cumulative, wantCum)
		}
	}
	if s.Count != 5 || s.Sum != 56.05 {
		t.Fatalf("count %d sum %g, want 5, 56.05", s.Count, s.Sum)
	}
	buckets := s.JSONBuckets()
	if buckets["le_0.1"] != 1 || buckets["le_1"] != 3 || buckets["le_10"] != 4 || buckets["le_inf"] != 5 {
		t.Fatalf("JSON buckets %v are not cumulative", buckets)
	}
}

func TestHistogramBoundaryGoesIntoLowerBucket(t *testing.T) {
	// le semantics: an observation equal to a bound belongs to that bucket.
	h := NewHistogram(1, 2)
	h.Observe(1)
	s := h.Snapshot()
	if s.Cumulative[0] != 1 {
		t.Fatalf("observation at bound 1 landed outside le=1: %v", s.Cumulative)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 || s.Cumulative[0] != 8000 {
		t.Fatalf("concurrent count %d / %v, want 8000", s.Count, s.Cumulative)
	}
}

func TestCumulativeSnapshotFromRawCounts(t *testing.T) {
	s := CumulativeSnapshot([]float64{1, 2}, []int64{3, 0, 2}, 7.5)
	if s.Count != 5 || s.Cumulative[0] != 3 || s.Cumulative[1] != 3 || s.Cumulative[2] != 5 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestPromWriterEmitsValidExposition(t *testing.T) {
	h := NewHistogram(0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	pw := NewPromWriter(&buf)
	pw.Meta("test_requests_total", "counter", "Requests served.")
	pw.Sample("test_requests_total", Labels("route", `GET /v1/models`), 42)
	pw.Meta("test_goroutines", "gauge", "Live goroutines.")
	pw.Sample("test_goroutines", "", 7)
	pw.Meta("test_latency_seconds", "histogram", "Latency with \"quotes\" and back\\slash.")
	pw.Histogram("test_latency_seconds", Label("route", "POST /v1/fit"), h.Snapshot())
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, `test_requests_total{route="GET /v1/models"} 42`) {
		t.Fatalf("missing labeled counter in:\n%s", out)
	}
	if !strings.Contains(out, `test_latency_seconds_bucket{route="POST /v1/fit",le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket in:\n%s", out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("writer output fails validation: %v\n%s", err, out)
	}
}

func TestValidateExpositionCatchesMalformedLines(t *testing.T) {
	cases := []struct{ name, text string }{
		{"no type", "foo 1\n"},
		{"bad name", "# TYPE 9foo counter\n9foo 1\n"},
		{"bad type", "# TYPE foo barometer\nfoo 1\n"},
		{"bad value", "# TYPE foo counter\nfoo one\n"},
		{"garbage line", "# TYPE foo counter\nfoo{ 1\n"},
		{"duplicate type", "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\n"},
		{"missing inf bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"non-cumulative buckets", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" + `h_bucket{le="+Inf"} 8` + "\n"},
		{"count mismatch", "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 4\n"},
		{"le not ascending", "# TYPE h histogram\n" +
			`h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 2` + "\n" + `h_bucket{le="+Inf"} 2` + "\n"},
	}
	for _, tc := range cases {
		if err := ValidateExposition(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: validator accepted malformed exposition:\n%s", tc.name, tc.text)
		}
	}
}

func TestValidateExpositionAcceptsWellFormed(t *testing.T) {
	text := `# HELP up Whether the target is up.
# TYPE up gauge
up 1
# TYPE lat histogram
lat_bucket{le="0.1"} 2
lat_bucket{le="+Inf"} 4
lat_sum 1.5
lat_count 4
# TYPE inf_gauge gauge
inf_gauge +Inf
`
	if err := ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("well-formed exposition rejected: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Label("name", "a\"b\\c\nd")
	want := `name="a\"b\\c\nd"`
	if got != want {
		t.Fatalf("Label = %s, want %s", got, want)
	}
	labels, err := parseLabels(got)
	if err != nil {
		t.Fatal(err)
	}
	if labels["name"] != `a\"b\\c\nd` {
		t.Fatalf("round trip %q", labels["name"])
	}
}

func TestFormatValue(t *testing.T) {
	if FormatValue(math.Inf(1)) != "+Inf" || FormatValue(math.Inf(-1)) != "-Inf" || FormatValue(math.NaN()) != "NaN" {
		t.Fatal("special float spellings wrong")
	}
	if FormatValue(0.25) != "0.25" {
		t.Fatalf("FormatValue(0.25) = %s", FormatValue(0.25))
	}
}

func TestReadRuntimeStats(t *testing.T) {
	s := ReadRuntimeStats()
	if s.Goroutines < 1 || s.HeapAllocBytes == 0 {
		t.Fatalf("implausible runtime stats %+v", s)
	}
	j := s.JSON()
	if _, ok := j["goroutines"]; !ok {
		t.Fatal("JSON view missing goroutines")
	}
}
