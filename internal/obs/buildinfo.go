package obs

// Version identifies the build. It is overridden at link time by the
// Makefile:
//
//	go build -ldflags "-X repro/internal/obs.Version=$(VERSION)"
//
// and surfaces in /healthz and the rsmd_build_info gauge, so traces,
// bench JSON and dashboards can be pinned to the exact build that
// produced them.
var Version = "dev"
