package circuit

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/variation"
)

func newSpiceOpAmp(t *testing.T) *SpiceOpAmp {
	t.Helper()
	o, err := NewSpiceOpAmp()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestSpiceOpAmpNominal(t *testing.T) {
	o := newSpiceOpAmp(t)
	m, err := o.Evaluate(make([]float64, o.Dim()))
	if err != nil {
		t.Fatal(err)
	}
	gain, ugf, power, offset := m[0], m[1], m[2], m[3]
	// Design targets: A0 in the thousands, GBW in the tens of MHz,
	// power ≈ VDD·(Iref + I5 + I7) = 1.2·70µ ≈ 84µW.
	if gain < 500 || gain > 50000 {
		t.Errorf("nominal open-loop gain %g outside plausible range", gain)
	}
	if ugf < 1e6 || ugf > 1e9 {
		t.Errorf("nominal unity-gain frequency %g outside plausible range", ugf)
	}
	if power < 30e-6 || power > 300e-6 {
		t.Errorf("nominal power %g W outside plausible range", power)
	}
	if offset != 0 {
		t.Errorf("nominal offset %g, want exactly 0 (self-referenced)", offset)
	}
}

func TestSpiceOpAmpAgreesWithAnalyticTrends(t *testing.T) {
	// The transistor-level bench must show the same directional
	// sensitivities as the analytic model: input-pair VT mismatch moves
	// offset; more compensation capacitance lowers bandwidth.
	o := newSpiceOpAmp(t)
	dim := o.Dim()
	factor := func(name string) int {
		for f := 0; f < dim; f++ {
			if o.Space().FactorName(f) == name {
				return f
			}
		}
		t.Fatalf("factor %s not found", name)
		return -1
	}
	base, err := o.Evaluate(make([]float64, dim))
	if err != nil {
		t.Fatal(err)
	}
	// +3σ on M1's VTH: offset must move by roughly the VT shift (≈ mV).
	dy := make([]float64, dim)
	dy[factor("local/M1/VTH")] = 3
	m, err := o.Evaluate(dy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[3]-base[3]) < 1e-4 {
		t.Errorf("input-pair VT shift moved offset only %g", m[3]-base[3])
	}
	// +3σ on the compensation cap: bandwidth must drop.
	dy = make([]float64, dim)
	dy[factor("local/W3/CWIRE")] = 3
	m, err = o.Evaluate(dy)
	if err != nil {
		t.Fatal(err)
	}
	if m[1] >= base[1] {
		t.Errorf("larger Cc did not reduce bandwidth: %g → %g", base[1], m[1])
	}
	// A wire factor far from the signal path barely moves gain.
	dy = make([]float64, dim)
	dy[factor("local/W6/RWIRE")] = 3
	m, err = o.Evaluate(dy)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m[0]-base[0]) / base[0]; rel > 0.01 {
		t.Errorf("feedback-leak wire moved gain by %.2f%%", 100*rel)
	}
}

func TestSpiceOpAmpMonteCarlo(t *testing.T) {
	o := newSpiceOpAmp(t)
	src := rng.New(21)
	const n = 10
	cols := make([][]float64, 4)
	dy := make([]float64, o.Dim())
	for i := 0; i < n; i++ {
		src.NormVec(dy, o.Dim())
		m, err := o.Evaluate(dy)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		for j, v := range m {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("metric %d is %g", j, v)
			}
			cols[j] = append(cols[j], v)
		}
	}
	for j, name := range o.Metrics() {
		if stats.StdDev(cols[j]) == 0 {
			t.Errorf("%s shows no variability", name)
		}
	}
}

func TestSpiceOpAmpOffsetSigmaPlausible(t *testing.T) {
	// Input-referred offset sigma should be on the order of the input-pair
	// mismatch (a few mV), not volts.
	o := newSpiceOpAmp(t)
	src := rng.New(22)
	var offs []float64
	dy := make([]float64, o.Dim())
	for i := 0; i < 12; i++ {
		src.NormVec(dy, o.Dim())
		m, err := o.Evaluate(dy)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, m[3])
	}
	sd := stats.StdDev(offs)
	if sd < 1e-4 || sd > 0.1 {
		t.Errorf("offset sigma %g V outside plausible (0.1 mV, 100 mV)", sd)
	}
}

func TestSpiceOpAmpDimSmallerThanAnalytic(t *testing.T) {
	o := newSpiceOpAmp(t)
	if o.Dim() != 52 {
		t.Errorf("Dim = %d, want 52 (8+8 transistors ×2 + 8 wires ×2 + 4 globals)", o.Dim())
	}
	if len(o.Metrics()) != 4 {
		t.Errorf("Metrics = %v", o.Metrics())
	}
	_ = variation.VTH
}
