package circuit

import (
	"fmt"

	"repro/internal/spice"
	"repro/internal/variation"
)

// SpiceOpAmp is the two-stage Miller OpAmp of Fig. 3 evaluated at transistor
// level by internal/spice, the counterpart of the analytic OpAmp testbench:
// the same topology, metrics and variation kinds, but every number comes out
// of DC and AC circuit analyses rather than closed-form equations.
//
// Measurement setup (per sample):
//
//   - the amplifier sits in the classic "DC-closed, AC-open" bench: unity
//     feedback through a huge inductor stabilizes the operating point while
//     leaving the AC loop open;
//   - gain is |V(out)| of the AC sweep at its lowest frequency, bandwidth is
//     the unity-gain crossing, power is VDD supply current × VDD, and offset
//     is the DC output deviation of the follower relative to the nominal
//     (dy = 0) run.
//
// The variation space is deliberately smaller than the analytic OpAmp's 630
// factors (52: no spatial grid, fewer parasitics) because each sample costs
// a full DC + AC simulation; the testbench exists as the transistor-level
// cross-check of the analytic model and as a realistic "expensive simulator"
// for the cost experiments.
type SpiceOpAmp struct {
	space *variation.Space

	m        [8]int // M1..M8 device indices
	bias     []int  // bias array units
	wires    []int
	vdd, vt0 float64

	// nominalFollow is the follower output voltage at dy = 0; offset is
	// measured relative to it.
	nominalFollow float64
}

// NewSpiceOpAmp builds the transistor-level OpAmp testbench.
func NewSpiceOpAmp() (*SpiceOpAmp, error) {
	o := &SpiceOpAmp{vdd: 1.2, vt0: 0.4}
	var devs []variation.Device
	addT := func(name string, w, l, x, y float64) int {
		devs = append(devs, variation.Device{
			Name: name, W: w, L: l, X: x, Y: y,
			Kinds: []variation.ParamKind{variation.VTH, variation.Beta},
		})
		return len(devs) - 1
	}
	names := []string{"M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8"}
	widths := []float64{10, 10, 4, 4, 8, 16, 16, 8}
	for i, n := range names {
		o.m[i] = addT(n, widths[i], 0.24, 40+2*float64(i), 50)
	}
	for i := 0; i < 8; i++ {
		o.bias = append(o.bias, addT(fmt.Sprintf("MB%d", i), 2, 0.5, 10+float64(i), 10))
	}
	for i := 0; i < 8; i++ {
		devs = append(devs, variation.Device{
			Name: fmt.Sprintf("W%d", i), W: 0.1, L: 5,
			X: 20 + 5*float64(i), Y: 30,
			Kinds: []variation.ParamKind{variation.RWire, variation.CWire},
		})
		o.wires = append(o.wires, len(devs)-1)
	}
	spec := variation.Spec{
		Devices: devs,
		InterDieSigma: map[variation.ParamKind]float64{
			variation.VTH:   0.015,
			variation.Beta:  0.03,
			variation.RWire: 0.05,
			variation.CWire: 0.04,
		},
		PelgromA: map[variation.ParamKind]float64{
			variation.VTH:   0.004,
			variation.Beta:  0.01,
			variation.RWire: 0.02,
			variation.CWire: 0.015,
		},
	}
	space, err := variation.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("circuit: SpiceOpAmp variation space: %w", err)
	}
	o.space = space
	// Calibrate the nominal follower output for the offset reference.
	nom, err := o.measure(make([]float64, space.Dim()), false)
	if err != nil {
		return nil, fmt.Errorf("circuit: SpiceOpAmp nominal run: %w", err)
	}
	o.nominalFollow = nom.follow
	return o, nil
}

// Dim implements Simulator.
func (o *SpiceOpAmp) Dim() int { return o.space.Dim() }

// Metrics implements Simulator.
func (o *SpiceOpAmp) Metrics() []string { return []string{"gain", "bandwidth", "power", "offset"} }

// Space exposes the variation space.
func (o *SpiceOpAmp) Space() *variation.Space { return o.space }

// measurement carries one testbench run's raw numbers.
type measurement struct {
	gain, ugf, power, follow float64
}

// mos builds the perturbed parameters of device index d.
func (o *SpiceOpAmp) mos(d int, typ spice.MOSType, beta0 float64, dy []float64) spice.MOSParams {
	return spice.MOSParams{
		Type:   typ,
		VT:     o.vt0 + o.space.Delta(d, variation.VTH, dy),
		Beta:   beta0 * (1 + o.space.Delta(d, variation.Beta, dy)),
		Lambda: 0.1,
	}
}

// measure runs the DC + AC testbench; withAC=false skips the sweep (used by
// the nominal calibration, which only needs the follower voltage).
func (o *SpiceOpAmp) measure(dy []float64, withAC bool) (measurement, error) {
	const (
		betaU = 889e-6 // bias / mirror unit
		beta1 = 2e-3   // input pair
		beta6 = 3.56e-3
		irefN = 10e-6
		vbias = 0.6
		cc    = 2e-12
		rz    = 2e3
		cl    = 3e-12
	)
	// On-chip reference current: the bias array's strength scales IREF,
	// exactly like the analytic testbench.
	unit := 0.0
	for _, u := range o.bias {
		bu := 1 + o.space.Delta(u, variation.Beta, dy)
		dvt := o.space.Delta(u, variation.VTH, dy)
		vov := 0.15 - dvt
		if vov < 0.03 {
			vov = 0.03
		}
		unit += bu * (vov / 0.15) * (vov / 0.15)
	}
	iref := irefN * unit / float64(len(o.bias))

	c := spice.New()
	vdd := c.Node("vdd")
	inp, inpG := c.Node("inp"), c.Node("inpg")
	inn := c.Node("inn")
	nb, tail := c.Node("nb"), c.Node("tail")
	o1m, o1, z := c.Node("o1m"), c.Node("o1"), c.Node("z")
	out, outL := c.Node("out"), c.Node("outl")

	c.AddVoltageSource("VDD", vdd, spice.Ground, spice.DC(o.vdd))
	c.AddVoltageSource("VINP", inp, spice.Ground, spice.DC(vbias))
	if withAC {
		if err := c.SetACMagnitude("VINP", 1); err != nil {
			return measurement{}, err
		}
	}
	c.AddCurrentSource("IREF", vdd, nb, spice.DC(iref))

	// Input routing parasitics (wires 0..1).
	rIn := 500 * (1 + o.space.Delta(o.wires[0], variation.RWire, dy))
	cIn := 5e-15 * (1 + o.space.Delta(o.wires[1], variation.CWire, dy))
	c.AddResistor("RWIN", inp, inpG, rIn)
	c.AddCapacitor("CWIN", inpG, spice.Ground, cIn)

	// Core amplifier.
	c.AddMOSFET("M8", nb, nb, spice.Ground, o.mos(o.m[7], spice.NMOS, betaU, dy))
	c.AddMOSFET("M5", tail, nb, spice.Ground, o.mos(o.m[4], spice.NMOS, 2*betaU, dy))
	// M1's gate is the inverting input (signal path M1→o1m→mirror→o1→M6
	// inverts twice on the M2 side but once here); unity feedback lands on
	// it, the AC stimulus drives M2.
	c.AddMOSFET("M1", o1m, inn, tail, o.mos(o.m[0], spice.NMOS, beta1, dy))
	c.AddMOSFET("M2", o1, inpG, tail, o.mos(o.m[1], spice.NMOS, beta1, dy))
	c.AddMOSFET("M3", o1m, o1m, vdd, o.mos(o.m[2], spice.PMOS, betaU, dy))
	c.AddMOSFET("M4", o1, o1m, vdd, o.mos(o.m[3], spice.PMOS, betaU, dy))
	c.AddMOSFET("M6", out, o1, vdd, o.mos(o.m[5], spice.PMOS, beta6, dy))
	c.AddMOSFET("M7", out, nb, spice.Ground, o.mos(o.m[6], spice.NMOS, 4*betaU, dy))

	// Compensation and parasitic loading (wires 2..5).
	rzEff := rz * (1 + o.space.Delta(o.wires[2], variation.RWire, dy))
	ccEff := cc * (1 + o.space.Delta(o.wires[3], variation.CWire, dy))
	c.AddResistor("RZ", o1, z, rzEff)
	c.AddCapacitor("CC", z, out, ccEff)
	rOut := 100 * (1 + o.space.Delta(o.wires[4], variation.RWire, dy))
	clEff := cl * (1 + o.space.Delta(o.wires[5], variation.CWire, dy))
	c.AddResistor("RWOUT", out, outL, rOut)
	c.AddCapacitor("CL", outL, spice.Ground, clEff)

	// DC-closed / AC-open unity feedback (wires 6..7 load the loop node).
	c.AddInductor("LFB", out, inn, 1e12)
	rFb := 1e9 * (1 + o.space.Delta(o.wires[6], variation.RWire, dy))
	cFb := 2e-15 * (1 + o.space.Delta(o.wires[7], variation.CWire, dy))
	c.AddResistor("RLK", inn, spice.Ground, rFb)
	c.AddCapacitor("CFB", inn, spice.Ground, cFb)

	// Seed the feedback loop's intended operating point; without the
	// nodeset, Newton can settle in the latched-off state (out = 0).
	c.NodeSet(inn, vbias)
	c.NodeSet(out, vbias)
	c.NodeSet(o1, o.vdd-0.55)
	c.NodeSet(o1m, o.vdd-0.55)
	c.NodeSet(nb, 0.55)
	c.NodeSet(tail, 0.1)

	sol, err := c.DC()
	if err != nil {
		return measurement{}, err
	}
	m := measurement{
		follow: sol.Voltage(out),
		power:  -sol.SourceCurrent(0) * o.vdd,
	}
	if !withAC {
		return m, nil
	}
	res, err := c.AC(spice.LogSpace(10, 1e9, 10))
	if err != nil {
		return measurement{}, err
	}
	m.gain = res.Mag(out, 0)
	ugf, err := res.UnityGainFreq(out)
	if err != nil {
		return measurement{}, err
	}
	m.ugf = ugf
	return m, nil
}

// Evaluate implements Simulator.
func (o *SpiceOpAmp) Evaluate(dy []float64) ([]float64, error) {
	if err := checkDim(len(dy), o.space.Dim()); err != nil {
		return nil, err
	}
	m, err := o.measure(dy, true)
	if err != nil {
		return nil, fmt.Errorf("circuit: SpiceOpAmp sample: %w", err)
	}
	offset := m.follow - o.nominalFollow
	return []float64{m.gain, m.ugf, m.power, offset}, nil
}

var _ Simulator = (*SpiceOpAmp)(nil)
