package circuit

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestRingOscillatorNominalPeriod(t *testing.T) {
	ro, err := NewRingOscillator(5)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Dim() != 4+4*5 {
		t.Fatalf("Dim = %d, want 24", ro.Dim())
	}
	m, err := ro.Evaluate(make([]float64, ro.Dim()))
	if err != nil {
		t.Fatal(err)
	}
	period := m[0]
	if period < 50e-12 || period > 5e-9 {
		t.Errorf("nominal period %g s outside plausible (50ps, 5ns)", period)
	}
}

func TestRingOscillatorMoreStagesSlower(t *testing.T) {
	p := func(stages int) float64 {
		ro, err := NewRingOscillator(stages)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ro.Evaluate(make([]float64, ro.Dim()))
		if err != nil {
			t.Fatal(err)
		}
		return m[0]
	}
	p5, p9 := p(5), p(9)
	// Period scales ≈ linearly with stage count: 9 stages ≈ 1.8× slower.
	if p9 < 1.4*p5 {
		t.Errorf("9-stage period %g not ≫ 5-stage %g", p9, p5)
	}
}

func TestRingOscillatorEveryStageMatters(t *testing.T) {
	// The dense-coefficient negative control: perturbing ANY stage's NMOS
	// VT must shift the period by a comparable amount (same order).
	ro, err := NewRingOscillator(5)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ro.Evaluate(make([]float64, ro.Dim()))
	if err != nil {
		t.Fatal(err)
	}
	var effects []float64
	for stage := 0; stage < 5; stage++ {
		name := "local/MN" + string(rune('0'+stage)) + "/VTH"
		idx := -1
		for f := 0; f < ro.Dim(); f++ {
			if ro.Space().FactorName(f) == name {
				idx = f
			}
		}
		if idx == -1 {
			t.Fatalf("factor %s not found", name)
		}
		dy := make([]float64, ro.Dim())
		dy[idx] = 3
		m, err := ro.Evaluate(dy)
		if err != nil {
			t.Fatal(err)
		}
		effects = append(effects, math.Abs(m[0]-base[0]))
	}
	min, max := effects[0], effects[0]
	for _, e := range effects {
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if min <= 0 {
		t.Fatalf("some stage has zero effect: %v", effects)
	}
	if max/min > 6 {
		t.Errorf("stage effects differ by %.1f× — expected comparable influence: %v", max/min, effects)
	}
}

func TestRingOscillatorVariability(t *testing.T) {
	ro, err := NewRingOscillator(5)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(33)
	var periods []float64
	dy := make([]float64, ro.Dim())
	for i := 0; i < 8; i++ {
		src.NormVec(dy, ro.Dim())
		m, err := ro.Evaluate(dy)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		periods = append(periods, m[0])
	}
	if stats.StdDev(periods) == 0 {
		t.Error("period shows no variability")
	}
}

func TestRingOscillatorValidation(t *testing.T) {
	if _, err := NewRingOscillator(4); err == nil {
		t.Error("even stage count must error")
	}
	if _, err := NewRingOscillator(1); err == nil {
		t.Error("single stage must error")
	}
}
