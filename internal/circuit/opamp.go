package circuit

import (
	"fmt"
	"math"

	"repro/internal/variation"
)

// OpAmp is the two-stage Miller-compensated operational amplifier of the
// paper's Fig. 3, with an on-chip current source for biasing. Performance is
// evaluated with analytic small-signal equations over a variation space
// that matches the paper's setup: 630 independent random variables covering
// inter-die and intra-die MOS variation plus layout parasitics.
//
// The circuit structure (and hence the sparse structure of its response
// surface):
//
//   - M1/M2: input differential pair — dominates "offset" via mismatch
//   - M3/M4: current-mirror load — second-order offset contribution
//   - M5: tail current source; M8 + bias array: current reference
//   - M6/M7: second stage — gain and power
//   - Cc: Miller compensation — bandwidth, loaded by parasitic wires
//   - 266 parasitic wire segments (R and C each) with near-zero influence
type OpAmp struct {
	space *variation.Space

	// Device indices into the variation space.
	m1, m2, m3, m4, m5, m6, m7, m8 int
	biasUnits                      []int
	wires                          []int

	// Nominal design values.
	vdd   float64 // supply (V)
	iref  float64 // reference current (A)
	beta1 float64 // input pair transconductance factor (A/V²)
	beta3 float64 // mirror load beta
	beta6 float64 // second-stage beta
	lam   float64 // channel-length modulation (1/V)
	cc    float64 // compensation capacitor (F)
	vt0   float64 // nominal threshold (V)
}

// opAmpWireCount is chosen so the total factor count is exactly the paper's
// 630 (see NewOpAmp's accounting).
const opAmpWireCount = 266

// NewOpAmp builds the OpAmp testbench with its 630-dimensional variation
// space.
func NewOpAmp() (*OpAmp, error) {
	o := &OpAmp{
		vdd:   1.2,
		iref:  10e-6,
		beta1: 2e-3,
		beta3: 1e-3,
		beta6: 4e-3,
		lam:   0.1,
		cc:    2e-12,
		vt0:   0.4,
	}
	var devs []variation.Device
	addT := func(name string, w, l, x, y float64) int {
		devs = append(devs, variation.Device{
			Name: name, W: w, L: l, X: x, Y: y,
			Kinds: []variation.ParamKind{variation.VTH, variation.Beta},
		})
		return len(devs) - 1
	}
	// Core transistors (positions in µm on a 100×100 die).
	o.m1 = addT("M1", 10, 0.24, 40, 50)
	o.m2 = addT("M2", 10, 0.24, 44, 50)
	o.m3 = addT("M3", 4, 0.24, 40, 60)
	o.m4 = addT("M4", 4, 0.24, 44, 60)
	o.m5 = addT("M5", 8, 0.5, 42, 40)
	o.m6 = addT("M6", 16, 0.24, 60, 55)
	o.m7 = addT("M7", 16, 0.5, 60, 45)
	o.m8 = addT("M8", 8, 0.5, 30, 40)
	// On-chip bias current source: an array of 30 mirror unit transistors.
	for i := 0; i < 30; i++ {
		idx := addT(fmt.Sprintf("MB%d", i), 2, 0.5, 10+float64(i%6), 10+float64(i/6))
		o.biasUnits = append(o.biasUnits, idx)
	}
	// Layout parasitics: wire segments with R and C variation.
	for i := 0; i < opAmpWireCount; i++ {
		devs = append(devs, variation.Device{
			Name: fmt.Sprintf("W%d", i),
			W:    0.1, L: 5,
			X: float64(5 + (i*7)%90), Y: float64(5 + (i*13)%90),
			Kinds: []variation.ParamKind{variation.RWire, variation.CWire},
		})
		o.wires = append(o.wires, len(devs)-1)
	}

	spec := variation.Spec{
		Devices: devs,
		InterDieSigma: map[variation.ParamKind]float64{
			variation.VTH:   0.015, // 15 mV global VT shift
			variation.Beta:  0.03,  // 3% global beta shift
			variation.RWire: 0.05,
			variation.CWire: 0.04,
		},
		PelgromA: map[variation.ParamKind]float64{
			variation.VTH:  0.004, // 4 mV·µm
			variation.Beta: 0.01,  // 1%·µm
			// Wire local variability.
			variation.RWire: 0.02,
			variation.CWire: 0.015,
		},
		SpatialSigma: map[variation.ParamKind]float64{
			variation.VTH:  0.005,
			variation.Beta: 0.008,
		},
		GridNX: 3, GridNY: 3,
		DieW: 100, DieH: 100,
	}
	space, err := variation.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("circuit: OpAmp variation space: %w", err)
	}
	// Factor accounting: 4 globals + 2·9 spatial + 38 transistors·2 locals +
	// 266 wires·2 locals = 4 + 18 + 76 + 532 = 630, matching the paper.
	if space.Dim() != 630 {
		return nil, fmt.Errorf("circuit: OpAmp space has %d factors, want 630", space.Dim())
	}
	o.space = space
	return o, nil
}

// Dim implements Simulator.
func (o *OpAmp) Dim() int { return o.space.Dim() }

// Metrics implements Simulator: the paper's four OpAmp metrics.
func (o *OpAmp) Metrics() []string { return []string{"gain", "bandwidth", "power", "offset"} }

// Space exposes the variation space (for diagnostics and tests).
func (o *OpAmp) Space() *variation.Space { return o.space }

// vth returns the effective threshold of device d.
func (o *OpAmp) vth(d int, dy []float64) float64 {
	return o.vt0 + o.space.Delta(d, variation.VTH, dy)
}

// betaOf returns the effective beta of device d around nominal b0.
func (o *OpAmp) betaOf(d int, b0 float64, dy []float64) float64 {
	return b0 * (1 + o.space.Delta(d, variation.Beta, dy))
}

// Evaluate implements Simulator with the standard two-stage OpAmp
// small-signal equations.
func (o *OpAmp) Evaluate(dy []float64) ([]float64, error) {
	if err := checkDim(len(dy), o.space.Dim()); err != nil {
		return nil, err
	}
	// --- Bias generation -------------------------------------------------
	// The reference current mirrors through the 30-unit array; each unit's
	// strength varies with its beta and VT. The mirrored current follows the
	// square-law ratio at fixed gate drive VOV_b = 0.25 V.
	const vovB = 0.25
	unitSum := 0.0
	for _, u := range o.biasUnits {
		bu := 1 + o.space.Delta(u, variation.Beta, dy)
		dvt := o.space.Delta(u, variation.VTH, dy)
		vov := vovB - dvt
		if vov < 0.05 {
			vov = 0.05
		}
		unitSum += bu * (vov / vovB) * (vov / vovB)
	}
	mirror := unitSum / float64(len(o.biasUnits))
	// M8 sets the reference branch; M5 and M7 mirror with their own devices.
	b8 := 1 + o.space.Delta(o.m8, variation.Beta, dy)
	ib := o.iref * mirror / b8
	b5 := 1 + o.space.Delta(o.m5, variation.Beta, dy)
	b7 := 1 + o.space.Delta(o.m7, variation.Beta, dy)
	dvt5 := o.space.Delta(o.m5, variation.VTH, dy)
	dvt7 := o.space.Delta(o.m7, variation.VTH, dy)
	// Tail and second-stage currents (2× and 4× mirrors).
	i5 := 2 * ib * b5 * sq(1-dvt5/vovB)
	i7 := 4 * ib * b7 * sq(1-dvt7/vovB)

	// --- First stage ------------------------------------------------------
	id1 := i5 / 2
	beta1 := o.betaOf(o.m1, o.beta1, dy)
	beta2 := o.betaOf(o.m2, o.beta1, dy)
	beta3 := o.betaOf(o.m3, o.beta3, dy)
	beta4 := o.betaOf(o.m4, o.beta3, dy)
	gm1 := math.Sqrt(2 * beta1 * id1)
	gm3 := math.Sqrt(2 * beta3 * id1)
	ro1 := 1 / (2 * o.lam * id1) // ro2‖ro4 with equal λ
	a1 := gm1 * ro1

	// --- Second stage -----------------------------------------------------
	beta6 := o.betaOf(o.m6, o.beta6, dy)
	gm6 := math.Sqrt(2 * beta6 * i7)
	ro2 := 1 / (2 * o.lam * i7)
	a2 := gm6 * ro2

	// --- Parasitic aggregation --------------------------------------------
	// Wire capacitance loads the compensation node; wire resistance skews
	// the input routing. Each segment contributes a small weight, giving
	// the long tail of near-zero model coefficients seen in Fig. 6.
	capLoad, rSkew := 0.0, 0.0
	for j, w := range o.wires {
		dc := o.space.Delta(w, variation.CWire, dy)
		dr := o.space.Delta(w, variation.RWire, dy)
		capLoad += dc / float64(len(o.wires))
		// Alternating sign mimics the two input routes.
		if j%2 == 0 {
			rSkew += dr
		} else {
			rSkew -= dr
		}
	}
	rSkew /= float64(len(o.wires))

	// --- Metrics ------------------------------------------------------
	gain := a1 * a2
	ceff := o.cc * (1 + 0.5*capLoad)
	bandwidth := gm1 / (2 * math.Pi * ceff)
	power := o.vdd * (ib + i5 + i7)
	// Classic two-stage offset referred to the input.
	vov1 := math.Sqrt(2 * id1 / o.beta1)
	dvt12 := o.space.Delta(o.m1, variation.VTH, dy) - o.space.Delta(o.m2, variation.VTH, dy)
	dvt34 := o.space.Delta(o.m3, variation.VTH, dy) - o.space.Delta(o.m4, variation.VTH, dy)
	offset := dvt12 +
		(gm3/gm1)*dvt34 +
		(vov1/2)*((beta1-beta2)/o.beta1-(beta3-beta4)/o.beta3)/2 +
		2e-4*rSkew // parasitic routing asymmetry

	return []float64{gain, bandwidth, power, offset}, nil
}

func sq(x float64) float64 { return x * x }
