package circuit

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/variation"
)

func TestOpAmpDimensionMatchesPaper(t *testing.T) {
	o, err := NewOpAmp()
	if err != nil {
		t.Fatal(err)
	}
	if o.Dim() != 630 {
		t.Fatalf("OpAmp Dim = %d, want 630 (paper Section V-A)", o.Dim())
	}
	want := []string{"gain", "bandwidth", "power", "offset"}
	got := o.Metrics()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("metric %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestOpAmpNominalValuesPlausible(t *testing.T) {
	o, err := NewOpAmp()
	if err != nil {
		t.Fatal(err)
	}
	m, err := o.Evaluate(make([]float64, o.Dim()))
	if err != nil {
		t.Fatal(err)
	}
	gain, bw, power, offset := m[0], m[1], m[2], m[3]
	if gain < 100 || gain > 1e5 {
		t.Errorf("nominal gain %g outside plausible range", gain)
	}
	if bw < 1e6 || bw > 1e10 {
		t.Errorf("nominal bandwidth %g Hz outside plausible range", bw)
	}
	if power < 1e-6 || power > 1e-3 {
		t.Errorf("nominal power %g W outside plausible range", power)
	}
	if math.Abs(offset) > 1e-6 {
		t.Errorf("nominal offset %g, want ≈0 for a matched amplifier", offset)
	}
}

func TestOpAmpDeterministic(t *testing.T) {
	o, err := NewOpAmp()
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	dy := src.NormVec(nil, o.Dim())
	a, err := o.Evaluate(dy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Evaluate(dy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Evaluate is not deterministic at metric %d", i)
		}
	}
}

func TestOpAmpOffsetDominatedByInputPair(t *testing.T) {
	// The paper: "the offset of the OpAmp is mainly determined by the device
	// mismatches of the input differential pair". Verify that perturbing
	// M1's local VTH factor moves offset far more than a wire factor does.
	o, err := NewOpAmp()
	if err != nil {
		t.Fatal(err)
	}
	base := make([]float64, o.Dim())
	ref, err := o.Evaluate(base)
	if err != nil {
		t.Fatal(err)
	}
	// Find M1's local VTH factor and a wire factor via names.
	m1Factor, wireFactor := -1, -1
	for f := 0; f < o.Dim(); f++ {
		switch o.Space().FactorName(f) {
		case "local/M1/VTH":
			m1Factor = f
		case "local/W0/RWIRE":
			wireFactor = f
		}
	}
	if m1Factor == -1 || wireFactor == -1 {
		t.Fatal("expected factors not found")
	}
	perturb := func(f int) float64 {
		dy := make([]float64, o.Dim())
		dy[f] = 3
		m, err := o.Evaluate(dy)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(m[3] - ref[3])
	}
	dM1 := perturb(m1Factor)
	dWire := perturb(wireFactor)
	if dM1 < 100*dWire {
		t.Errorf("offset sensitivity: input pair %g vs wire %g — expected ≥100× dominance", dM1, dWire)
	}
}

func TestOpAmpVariabilitySpread(t *testing.T) {
	// Monte Carlo: each metric must actually vary (nonzero sigma) and stay
	// finite.
	o, err := NewOpAmp()
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(6)
	const n = 300
	vals := make([][]float64, 4)
	dy := make([]float64, o.Dim())
	for i := 0; i < n; i++ {
		src.NormVec(dy, o.Dim())
		m, err := o.Evaluate(dy)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range m {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("metric %d is %g", j, v)
			}
			vals[j] = append(vals[j], v)
		}
	}
	for j, name := range o.Metrics() {
		sd := stats.StdDev(vals[j])
		mean := stats.Mean(vals[j])
		if sd == 0 {
			t.Errorf("%s has zero variability", name)
		}
		if name != "offset" {
			if cv := sd / math.Abs(mean); cv < 0.001 || cv > 0.5 {
				t.Errorf("%s coefficient of variation %g outside [0.001, 0.5]", name, cv)
			}
		}
	}
}

func TestSRAMDimFormula(t *testing.T) {
	if d := PaperSRAMConfig().Dim(); d != 21310 {
		t.Errorf("paper config Dim = %d, want 21310", d)
	}
	if d := DefaultSRAMConfig().Dim(); d != 1058 {
		t.Errorf("default config Dim = %d, want 1058", d)
	}
}

func testSRAM(t *testing.T) *SRAM {
	t.Helper()
	s, err := NewSRAM(SRAMConfig{Rows: 4, Cols: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSRAMSpaceMatchesConfig(t *testing.T) {
	s := testSRAM(t)
	if s.Dim() != s.Config().Dim() {
		t.Fatalf("Dim %d != config %d", s.Dim(), s.Config().Dim())
	}
}

func TestSRAMNominalDelay(t *testing.T) {
	s := testSRAM(t)
	m, err := s.Evaluate(make([]float64, s.Dim()))
	if err != nil {
		t.Fatal(err)
	}
	delay := m[0]
	if delay < 10e-12 || delay > 2.5e-9 {
		t.Errorf("nominal read delay %g s outside plausible (10ps, 2.5ns)", delay)
	}
}

func TestSRAMDelayRespondsToAccessDevice(t *testing.T) {
	// Raising the access transistor VT (slower discharge) must increase the
	// delay; an off-column cell VT shift must have (near-)zero effect.
	s := testSRAM(t)
	base, err := s.Evaluate(make([]float64, s.Dim()))
	if err != nil {
		t.Fatal(err)
	}
	accFactor, farCellFactor := -1, -1
	for f := 0; f < s.Dim(); f++ {
		name := s.Space().FactorName(f)
		if name == "local/MACC/VTH" {
			accFactor = f
		}
		// The last cell belongs to a non-accessed column.
		if name == "local/CELL10/acc/VTH" {
			farCellFactor = f
		}
	}
	if accFactor == -1 || farCellFactor == -1 {
		t.Fatal("expected factors not found")
	}
	dy := make([]float64, s.Dim())
	dy[accFactor] = 3
	slow, err := s.Evaluate(dy)
	if err != nil {
		t.Fatal(err)
	}
	if slow[0] <= base[0] {
		t.Errorf("higher access VT gave delay %g ≤ nominal %g", slow[0], base[0])
	}
	dy[accFactor] = 0
	dy[farCellFactor] = 3
	far, err := s.Evaluate(dy)
	if err != nil {
		t.Fatal(err)
	}
	onPath := math.Abs(slow[0] - base[0])
	offPath := math.Abs(far[0] - base[0])
	if offPath > onPath/50 {
		t.Errorf("off-column cell influence %g not ≪ on-path influence %g", offPath, onPath)
	}
}

func TestSRAMMonteCarloVariability(t *testing.T) {
	s := testSRAM(t)
	src := rng.New(7)
	const n = 12
	var delays []float64
	dy := make([]float64, s.Dim())
	for i := 0; i < n; i++ {
		src.NormVec(dy, s.Dim())
		m, err := s.Evaluate(dy)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		delays = append(delays, m[0])
	}
	if sd := stats.StdDev(delays); sd == 0 {
		t.Error("read delay has zero variability")
	}
}

func TestSRAMConfigValidation(t *testing.T) {
	if _, err := NewSRAM(SRAMConfig{Rows: 1, Cols: 1}); err == nil {
		t.Error("degenerate config must error")
	}
}

func TestSyntheticOracleRecovery(t *testing.T) {
	syn, err := NewSynthetic(9, 40, 1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if syn.Dim() != 40 {
		t.Fatalf("Dim = %d", syn.Dim())
	}
	// Evaluate at points and confirm it matches the oracle model exactly
	// (no noise).
	src := rng.New(10)
	dy := src.NormVec(nil, 40)
	got, err := syn.Evaluate(dy)
	if err != nil {
		t.Fatal(err)
	}
	want := syn.TrueModel().PredictPoint(syn.Basis(), dy)
	if got[0] != want {
		t.Errorf("Evaluate = %g, oracle = %g", got[0], want)
	}
}

func TestSyntheticNoiseIsFresh(t *testing.T) {
	syn, err := NewSynthetic(11, 10, 2, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	dy := make([]float64, 10)
	a, _ := syn.Evaluate(dy)
	b, _ := syn.Evaluate(dy)
	if a[0] == b[0] {
		t.Error("noisy evaluations at the same point should differ")
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := NewSynthetic(1, 0, 1, 1, 0); err == nil {
		t.Error("dim=0 must error")
	}
	if _, err := NewSynthetic(1, 3, 1, 100, 0); err == nil {
		t.Error("nnz > dictionary must error")
	}
}

func TestSimulatorDimChecks(t *testing.T) {
	o, err := NewOpAmp()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Evaluate(make([]float64, 3)); err == nil {
		t.Error("wrong factor length must error")
	}
}

func TestOpAmpSpaceSigmaPositive(t *testing.T) {
	o, err := NewOpAmp()
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check a few devices for nonzero total sigma.
	sp := o.Space()
	for d := 0; d < 3; d++ {
		if sp.Sigma(d, variation.VTH) <= 0 {
			t.Errorf("device %d has zero VTH sigma", d)
		}
	}
}
