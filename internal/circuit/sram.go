package circuit

import (
	"fmt"
	"math"

	"repro/internal/spice"
	"repro/internal/variation"
)

// SRAMConfig sizes the SRAM read-path testbench of the paper's Fig. 5.
type SRAMConfig struct {
	// Rows, Cols define the cell array. The accessed cell is modeled with
	// dedicated read-path devices; every other cell contributes bitline
	// leakage (same column) or nothing (other columns), which is the source
	// of the profoundly sparse delay model of Fig. 6.
	Rows, Cols int
}

// Dim returns the variation-space dimensionality the config produces:
// 58 fixed factors (globals, spatial grid, path devices, wires) plus two
// local VTH factors per non-accessed cell.
func (c SRAMConfig) Dim() int { return 58 + 2*(c.Rows*c.Cols-1) + 2 }

// PaperSRAMConfig reproduces the paper's scale: 21 310 independent random
// variables (138×77 cells).
func PaperSRAMConfig() SRAMConfig { return SRAMConfig{Rows: 138, Cols: 77} }

// DefaultSRAMConfig is the scaled-down default used by the benchmarks:
// 25×20 cells, 1 058 factors.
func DefaultSRAMConfig() SRAMConfig { return SRAMConfig{Rows: 25, Cols: 20} }

// SRAM is the read-path testbench: cell array column with distributed
// bitline RC, a replica column for self-timing, and a differential sense
// amplifier, simulated at transistor level by internal/spice. The metric is
// the read delay from the word-line input edge to the sense-amp output.
type SRAM struct {
	cfg   SRAMConfig
	space *variation.Space

	// Path device indices in the variation space.
	wlP, wlN, acc, pd, pre, rpre, racc, rpd int
	sa1, sa2, saM1, saM2, tail              int
	wires                                   []int
	// cellDev[i] holds the two device indices (access, pulldown) of the
	// i-th non-accessed cell in the accessed column (i < Rows-1) and the
	// other columns after that.
	cellDev [][2]int

	// Nominal electrical values.
	vdd, vt0 float64
}

// NewSRAM builds the testbench and its variation space.
func NewSRAM(cfg SRAMConfig) (*SRAM, error) {
	if cfg.Rows < 2 || cfg.Cols < 1 {
		return nil, fmt.Errorf("circuit: SRAM needs at least 2 rows and 1 column, got %dx%d", cfg.Rows, cfg.Cols)
	}
	s := &SRAM{cfg: cfg, vdd: 1.0, vt0: 0.3}
	var devs []variation.Device
	addT := func(name string, w, l, x, y float64) int {
		devs = append(devs, variation.Device{
			Name: name, W: w, L: l, X: x, Y: y,
			Kinds: []variation.ParamKind{variation.VTH, variation.Beta},
		})
		return len(devs) - 1
	}
	// 13 read-path transistors.
	s.wlP = addT("MWLP", 4, 0.06, 5, 50)
	s.wlN = addT("MWLN", 2, 0.06, 5, 52)
	s.acc = addT("MACC", 0.2, 0.06, 20, 50)
	s.pd = addT("MPD", 0.3, 0.06, 20, 52)
	s.pre = addT("MPRE", 1, 0.06, 20, 10)
	s.rpre = addT("MRPRE", 1, 0.06, 60, 10)
	s.racc = addT("MRACC", 0.15, 0.06, 60, 50)
	s.rpd = addT("MRPD", 0.2, 0.06, 60, 52)
	s.sa1 = addT("MSA1", 2, 0.1, 40, 80)
	s.sa2 = addT("MSA2", 2, 0.1, 42, 80)
	s.saM1 = addT("MSAM1", 1, 0.1, 40, 84)
	s.saM2 = addT("MSAM2", 1, 0.1, 42, 84)
	s.tail = addT("MTAIL", 2, 0.2, 41, 76)
	// 6 interconnect segments: 3 on the main bitline, 2 on the replica, 1 on
	// the word line.
	for i := 0; i < 6; i++ {
		devs = append(devs, variation.Device{
			Name: fmt.Sprintf("WSEG%d", i), W: 0.1, L: 20,
			X: 20 + 8*float64(i), Y: 30,
			Kinds: []variation.ParamKind{variation.RWire, variation.CWire},
		})
		s.wires = append(s.wires, len(devs)-1)
	}
	// Non-accessed cells: two VTH-only devices each (access and pulldown).
	// Cell 0 of the accessed column is the read cell (already modeled above),
	// so it is skipped here.
	total := cfg.Rows*cfg.Cols - 1
	for i := 0; i < total; i++ {
		a := len(devs)
		devs = append(devs, variation.Device{
			Name: fmt.Sprintf("CELL%d/acc", i), W: 0.2, L: 0.06,
			X: float64(20 + (i % cfg.Cols)), Y: float64(50 + i/cfg.Cols),
			Kinds: []variation.ParamKind{variation.VTH},
		})
		devs = append(devs, variation.Device{
			Name: fmt.Sprintf("CELL%d/pd", i), W: 0.3, L: 0.06,
			X: float64(20 + (i % cfg.Cols)), Y: float64(50 + i/cfg.Cols),
			Kinds: []variation.ParamKind{variation.VTH},
		})
		s.cellDev = append(s.cellDev, [2]int{a, a + 1})
	}

	spec := variation.Spec{
		Devices: devs,
		InterDieSigma: map[variation.ParamKind]float64{
			variation.VTH:   0.015,
			variation.Beta:  0.03,
			variation.RWire: 0.06,
			variation.CWire: 0.05,
		},
		PelgromA: map[variation.ParamKind]float64{
			variation.VTH:   0.0035,
			variation.Beta:  0.008,
			variation.RWire: 0.02,
			variation.CWire: 0.015,
		},
		SpatialSigma: map[variation.ParamKind]float64{
			variation.VTH:  0.004,
			variation.Beta: 0.006,
		},
		GridNX: 3, GridNY: 3,
		DieW: 120, DieH: 120,
	}
	space, err := variation.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("circuit: SRAM variation space: %w", err)
	}
	if space.Dim() != cfg.Dim() {
		return nil, fmt.Errorf("circuit: SRAM space has %d factors, config promises %d", space.Dim(), cfg.Dim())
	}
	s.space = space
	return s, nil
}

// Dim implements Simulator.
func (s *SRAM) Dim() int { return s.space.Dim() }

// Metrics implements Simulator.
func (s *SRAM) Metrics() []string { return []string{"read_delay"} }

// Space exposes the variation space for diagnostics.
func (s *SRAM) Space() *variation.Space { return s.space }

// Config returns the testbench configuration.
func (s *SRAM) Config() SRAMConfig { return s.cfg }

// mos builds the effective square-law parameters of path device d.
func (s *SRAM) mos(d int, typ spice.MOSType, beta0 float64, dy []float64) spice.MOSParams {
	return spice.MOSParams{
		Type:   typ,
		VT:     s.vt0 + s.space.Delta(d, variation.VTH, dy),
		Beta:   beta0 * (1 + s.space.Delta(d, variation.Beta, dy)),
		Lambda: 0.08,
	}
}

// Evaluate implements Simulator: it assembles the perturbed read-path
// netlist, runs a transient analysis and measures the WL→Out delay.
func (s *SRAM) Evaluate(dy []float64) ([]float64, error) {
	if err := checkDim(len(dy), s.space.Dim()); err != nil {
		return nil, err
	}
	const (
		tPrechargeOff = 0.2e-9
		tWL           = 0.3e-9
		tStop         = 4.0e-9
		tStep         = 5e-12
	)
	c := spice.New()
	vdd := c.Node("vdd")
	wlin := c.Node("wlin")
	pcb := c.Node("pcb")
	vb := c.Node("vb")
	wl, wlg := c.Node("wl"), c.Node("wlg")
	bl, bl2, bl3 := c.Node("bl"), c.Node("bl2"), c.Node("bl3")
	cn := c.Node("cn")
	rbl, rbl2 := c.Node("rbl"), c.Node("rbl2")
	rcn := c.Node("rcn")
	sgm, out, tail := c.Node("sgm"), c.Node("out"), c.Node("tail")

	c.AddVoltageSource("VDD", vdd, spice.Ground, spice.DC(s.vdd))
	// Word-line input: low, rising at tWL. The driver inverts, so the input
	// starts high and falls.
	c.AddVoltageSource("VWL", wlin, spice.Ground, spice.Pulse{
		V0: s.vdd, V1: 0, Delay: tWL, Rise: 20e-12, Fall: 20e-12, Width: 1,
	})
	// Precharge gate: low (on) then high (off) at tPrechargeOff.
	c.AddVoltageSource("VPC", pcb, spice.Ground, spice.Pulse{
		V0: 0, V1: s.vdd, Delay: tPrechargeOff, Rise: 20e-12, Fall: 20e-12, Width: 1,
	})
	c.AddVoltageSource("VB", vb, spice.Ground, spice.DC(0.55))

	// Word-line driver (inverter) and routing segment.
	c.AddMOSFET("MWLP", wl, wlin, vdd, s.mos(s.wlP, spice.PMOS, 1.5e-3, dy))
	c.AddMOSFET("MWLN", wl, wlin, spice.Ground, s.mos(s.wlN, spice.NMOS, 3e-3, dy))
	rw := 150 * (1 + s.space.Delta(s.wires[5], variation.RWire, dy))
	cw := 8e-15 * (1 + s.space.Delta(s.wires[5], variation.CWire, dy))
	c.AddResistor("RWL", wl, wlg, rw)
	c.AddCapacitor("CWL", wlg, spice.Ground, cw)

	// Main bitline: precharge + 3 RC segments, access cell at the far end.
	c.AddMOSFET("MPRE", bl, pcb, vdd, s.mos(s.pre, spice.PMOS, 1e-3, dy))
	perTapCap := 0.8e-15 * float64(s.cfg.Rows) / 3
	taps := []spice.NodeID{bl, bl2, bl3}
	for i := 0; i < 3; i++ {
		r := 200 * (1 + s.space.Delta(s.wires[i], variation.RWire, dy))
		cc := perTapCap * (1 + s.space.Delta(s.wires[i], variation.CWire, dy))
		if i < 2 {
			c.AddResistor(fmt.Sprintf("RBL%d", i), taps[i], taps[i+1], r)
		}
		c.AddCapacitor(fmt.Sprintf("CBL%d", i), taps[i], spice.Ground, cc)
	}
	c.AddMOSFET("MACC", bl3, wlg, cn, s.mos(s.acc, spice.NMOS, 300e-6, dy))
	c.AddMOSFET("MPD", cn, vdd, spice.Ground, s.mos(s.pd, spice.NMOS, 500e-6, dy))

	// Bitline leakage from the non-accessed cells of the accessed column.
	// Sub-threshold conduction through the series access device, modulated
	// by each cell's local VTH deltas — tiny but nonzero influence.
	const (
		i0       = 50e-12 // nominal per-cell leakage
		subSlope = 0.035  // n·vT
	)
	leak := 0.0
	for i := 0; i < s.cfg.Rows-1 && i < len(s.cellDev); i++ {
		dAcc := s.space.Delta(s.cellDev[i][0], variation.VTH, dy)
		dPd := s.space.Delta(s.cellDev[i][1], variation.VTH, dy)
		leak += i0 * math.Exp(-(dAcc+0.5*dPd)/subSlope)
	}
	if leak > 0 {
		c.AddCurrentSource("ILEAK", bl, spice.Ground, spice.DC(leak))
	}

	// Replica column: weaker cell with a keeper pull-up, so the replica
	// bitline settles at a mid-level reference voltage (a divider between
	// the keeper and the replica cell) instead of discharging fully. The
	// main bitline crossing this reference fires the sense amplifier.
	c.AddMOSFET("MRPRE", rbl, pcb, vdd, s.mos(s.rpre, spice.PMOS, 1e-3, dy))
	rKeep := 20e3 * (1 + s.space.Delta(s.wires[4], variation.RWire, dy))
	c.AddResistor("RKEEP", vdd, rbl, rKeep)
	rSeg := 250 * (1 + s.space.Delta(s.wires[3], variation.RWire, dy))
	c.AddResistor("RRBL", rbl, rbl2, rSeg)
	for i := 0; i < 2; i++ {
		w := s.wires[3+i]
		cc := 1.3 * perTapCap * (1 + s.space.Delta(w, variation.CWire, dy))
		tap := rbl
		if i == 1 {
			tap = rbl2
		}
		c.AddCapacitor(fmt.Sprintf("CRBL%d", i), tap, spice.Ground, cc)
	}
	c.AddMOSFET("MRACC", rbl2, wlg, rcn, s.mos(s.racc, spice.NMOS, 150e-6, dy))
	c.AddMOSFET("MRPD", rcn, vdd, spice.Ground, s.mos(s.rpd, spice.NMOS, 250e-6, dy))

	// Sense amplifier: NMOS diff pair (bl vs replica) with PMOS mirror load.
	// Out rises once the main bitline falls below the replica reference.
	c.AddMOSFET("MSA1", sgm, rbl, tail, s.mos(s.sa1, spice.NMOS, 400e-6, dy))
	c.AddMOSFET("MSA2", out, bl, tail, s.mos(s.sa2, spice.NMOS, 400e-6, dy))
	c.AddMOSFET("MSAM1", sgm, sgm, vdd, s.mos(s.saM1, spice.PMOS, 400e-6, dy))
	c.AddMOSFET("MSAM2", out, sgm, vdd, s.mos(s.saM2, spice.PMOS, 400e-6, dy))
	c.AddMOSFET("MTAIL", tail, vb, spice.Ground, s.mos(s.tail, spice.NMOS, 400e-6, dy))
	c.AddCapacitor("COUT", out, spice.Ground, 5e-15)

	tr, err := c.Transient(tStop, tStep)
	if err != nil {
		return nil, fmt.Errorf("circuit: SRAM transient: %w", err)
	}
	tIn, err := tr.CrossingTime(wlin, s.vdd/2, false, 0)
	if err != nil {
		return nil, fmt.Errorf("circuit: SRAM WL edge: %w", err)
	}
	tOut, err := tr.CrossingTime(out, 0.8*s.vdd, true, tIn)
	if err != nil {
		return nil, fmt.Errorf("circuit: SRAM sense output never fired: %w", err)
	}
	return []float64{tOut - tIn}, nil
}
