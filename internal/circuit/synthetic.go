package circuit

import (
	"fmt"
	"sync"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/hermite"
	"repro/internal/rng"
)

// Synthetic is a controlled benchmark with a known sparse ground truth: a
// randomly drawn sparse Hermite polynomial over n factors plus Gaussian
// observation noise. It exercises exactly the recovery problem of eq. (11)
// with an oracle answer, which the accuracy experiments and ablations use to
// separate solver error from substrate modeling error.
type Synthetic struct {
	dim   int
	noise float64
	model *core.Model
	b     *basis.Basis

	mu  sync.Mutex // guards src: Evaluate may run from parallel workers
	src *rng.Source
}

// NewSynthetic builds a synthetic benchmark: dim factors, a degree-deg
// Hermite dictionary, nnz active terms with coefficients drawn uniformly
// from ±[0.5, 1.5], and observation noise with the given standard deviation.
// The generator is deterministic in seed.
func NewSynthetic(seed int64, dim, deg, nnz int, noise float64) (*Synthetic, error) {
	if dim < 1 || deg < 1 || nnz < 1 {
		return nil, fmt.Errorf("circuit: invalid synthetic config dim=%d deg=%d nnz=%d", dim, deg, nnz)
	}
	var b *basis.Basis
	switch deg {
	case 1:
		b = basis.Linear(dim)
	case 2:
		b = basis.Quadratic(dim)
	default:
		b = basis.New(dim, hermite.TotalDegreeTerms(dim, deg))
	}
	if nnz > b.Size() {
		return nil, fmt.Errorf("circuit: nnz=%d exceeds dictionary size %d", nnz, b.Size())
	}
	src := rng.New(seed)
	perm := src.Perm(b.Size())
	support := append([]int(nil), perm[:nnz]...)
	coefs := make([]float64, nnz)
	for i := range coefs {
		mag := 0.5 + src.Float64()
		if src.Float64() < 0.5 {
			mag = -mag
		}
		coefs[i] = mag
	}
	return &Synthetic{
		dim:   dim,
		noise: noise,
		model: &core.Model{M: b.Size(), Support: support, Coef: coefs},
		b:     b,
		src:   src.Split(),
	}, nil
}

// Dim implements Simulator.
func (s *Synthetic) Dim() int { return s.dim }

// Metrics implements Simulator.
func (s *Synthetic) Metrics() []string { return []string{"f"} }

// Basis returns the dictionary the ground truth lives in.
func (s *Synthetic) Basis() *basis.Basis { return s.b }

// TrueModel returns the ground-truth sparse model (the oracle).
func (s *Synthetic) TrueModel() *core.Model { return s.model }

// Evaluate implements Simulator: ground truth plus fresh observation noise.
func (s *Synthetic) Evaluate(dy []float64) ([]float64, error) {
	if err := checkDim(len(dy), s.dim); err != nil {
		return nil, err
	}
	v := s.model.PredictPoint(s.b, dy)
	if s.noise > 0 {
		s.mu.Lock()
		v += s.noise * s.src.Norm()
		s.mu.Unlock()
	}
	return []float64{v}, nil
}

var (
	_ Simulator = (*OpAmp)(nil)
	_ Simulator = (*SRAM)(nil)
	_ Simulator = (*Synthetic)(nil)
)
