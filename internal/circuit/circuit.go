// Package circuit provides the testbench circuits of the paper's Section V:
// a two-stage operational amplifier (Fig. 3) with four performance metrics,
// an SRAM read path (Fig. 5) with a read-delay metric, and a synthetic
// benchmark with a known sparse ground truth for controlled experiments.
//
// Each testbench implements Simulator: a map from the independent
// standard-normal variation factors ΔY (produced by internal/variation, the
// stand-in for the paper's PCA-processed foundry data) to the performance
// metrics f(ΔY). The OpAmp uses analytic small-signal equations; the SRAM
// read path runs a transistor-level transient simulation with
// internal/spice.
package circuit

import "fmt"

// Simulator evaluates circuit performance metrics under process variation.
type Simulator interface {
	// Dim returns the number of independent variation factors N.
	Dim() int
	// Metrics names the performance outputs in order.
	Metrics() []string
	// Evaluate computes all metrics for one factor vector ΔY.
	Evaluate(dy []float64) ([]float64, error)
}

// checkDim validates a factor vector length.
func checkDim(got, want int) error {
	if got != want {
		return fmt.Errorf("circuit: factor vector length %d, want %d", got, want)
	}
	return nil
}
