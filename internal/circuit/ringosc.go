package circuit

import (
	"fmt"

	"repro/internal/spice"
	"repro/internal/variation"
)

// RingOscillator is a ring of CMOS inverters whose oscillation period is the
// performance metric, simulated at transistor level. It serves as the
// *negative control* for the paper's sparsity assumption: unlike the OpAmp
// offset (dominated by one device pair) or the SRAM delay (dominated by the
// read path), the RO period depends on *every* stage roughly equally, so its
// coefficient vector is dense at the scale of the circuit. The experiments
// use it to show where sparse recovery's advantage shrinks — and that
// cross-validation correctly selects a large λ in that regime.
type RingOscillator struct {
	stages int
	space  *variation.Space
	// devP[i], devN[i] are the variation-space indices of stage i's PMOS
	// and NMOS.
	devP, devN []int
	vdd, vt0   float64
}

// NewRingOscillator builds an oscillator with the given odd number of
// stages (≥ 3). The variation space has 4 global factors plus 2 local
// factors (VTH, Beta) per transistor: dim = 4 + 4·stages.
func NewRingOscillator(stages int) (*RingOscillator, error) {
	if stages < 3 || stages%2 == 0 {
		return nil, fmt.Errorf("circuit: ring oscillator needs an odd stage count ≥ 3, got %d", stages)
	}
	ro := &RingOscillator{stages: stages, vdd: 1.0, vt0: 0.3}
	var devs []variation.Device
	for i := 0; i < stages; i++ {
		devs = append(devs, variation.Device{
			Name: fmt.Sprintf("MP%d", i), W: 0.4, L: 0.06,
			X: float64(5 * i), Y: 10,
			Kinds: []variation.ParamKind{variation.VTH, variation.Beta},
		})
		ro.devP = append(ro.devP, len(devs)-1)
		devs = append(devs, variation.Device{
			Name: fmt.Sprintf("MN%d", i), W: 0.2, L: 0.06,
			X: float64(5 * i), Y: 12,
			Kinds: []variation.ParamKind{variation.VTH, variation.Beta},
		})
		ro.devN = append(ro.devN, len(devs)-1)
	}
	spec := variation.Spec{
		Devices: devs,
		InterDieSigma: map[variation.ParamKind]float64{
			variation.VTH:   0.015,
			variation.Beta:  0.03,
			variation.RWire: 0.05,
			variation.CWire: 0.04,
		},
		PelgromA: map[variation.ParamKind]float64{
			variation.VTH:  0.004,
			variation.Beta: 0.01,
		},
	}
	space, err := variation.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("circuit: ring oscillator variation space: %w", err)
	}
	ro.space = space
	return ro, nil
}

// Dim implements Simulator.
func (ro *RingOscillator) Dim() int { return ro.space.Dim() }

// Metrics implements Simulator.
func (ro *RingOscillator) Metrics() []string { return []string{"period"} }

// Space exposes the variation space.
func (ro *RingOscillator) Space() *variation.Space { return ro.space }

// Stages returns the number of inverter stages.
func (ro *RingOscillator) Stages() int { return ro.stages }

// Evaluate implements Simulator: a transient simulation of the free-running
// ring, measuring the oscillation period between two rising crossings of
// the first node.
func (ro *RingOscillator) Evaluate(dy []float64) ([]float64, error) {
	if err := checkDim(len(dy), ro.space.Dim()); err != nil {
		return nil, err
	}
	c := spice.New()
	vdd := c.Node("vdd")
	c.AddVoltageSource("VDD", vdd, spice.Ground, spice.DC(ro.vdd))
	nodes := make([]spice.NodeID, ro.stages)
	for i := range nodes {
		nodes[i] = c.Node(fmt.Sprintf("n%d", i))
	}
	mos := func(d int, typ spice.MOSType, beta0 float64) spice.MOSParams {
		return spice.MOSParams{
			Type:   typ,
			VT:     ro.vt0 + ro.space.Delta(d, variation.VTH, dy),
			Beta:   beta0 * (1 + ro.space.Delta(d, variation.Beta, dy)),
			Lambda: 0.1,
		}
	}
	for i := 0; i < ro.stages; i++ {
		in := nodes[(i+ro.stages-1)%ro.stages]
		out := nodes[i]
		c.AddMOSFET(fmt.Sprintf("MP%d", i), out, in, vdd, mos(ro.devP[i], spice.PMOS, 200e-6))
		c.AddMOSFET(fmt.Sprintf("MN%d", i), out, in, spice.Ground, mos(ro.devN[i], spice.NMOS, 200e-6))
		c.AddCapacitor(fmt.Sprintf("CL%d", i), out, spice.Ground, 20e-15)
	}
	// Break the DC symmetry so the ring starts oscillating: seed alternating
	// rail voltages. The DC solve settles to the metastable midpoint anyway
	// (all inverters at threshold); a kick-start current on node 0 pushes
	// the transient off it.
	for i, n := range nodes {
		if i%2 == 0 {
			c.NodeSet(n, ro.vdd)
		} else {
			c.NodeSet(n, 0)
		}
	}
	c.AddCurrentSource("IKICK", spice.Ground, nodes[0],
		spice.Pulse{V0: 0, V1: 50e-6, Delay: 50e-12, Rise: 50e-12, Fall: 50e-12, Width: 500e-12})

	const (
		tStop = 30e-9
		tStep = 10e-12
	)
	tr, err := c.Transient(tStop, tStep)
	if err != nil {
		return nil, fmt.Errorf("circuit: ring oscillator transient: %w", err)
	}
	mid := ro.vdd / 2
	// Skip the start-up transient, then measure between consecutive rising
	// crossings.
	t1, err := tr.CrossingTime(nodes[0], mid, true, tStop/3)
	if err != nil {
		return nil, fmt.Errorf("circuit: ring oscillator never settled: %w", err)
	}
	t2, err := tr.CrossingTime(nodes[0], mid, true, t1+10*tStep)
	if err != nil {
		return nil, fmt.Errorf("circuit: ring oscillator second crossing: %w", err)
	}
	return []float64{t2 - t1}, nil
}

var _ Simulator = (*RingOscillator)(nil)
