// Package rng provides the deterministic random sources used throughout the
// repository: seeded standard-normal streams, multivariate normal sampling
// from a covariance factor, and Latin hypercube designs. Every experiment is
// reproducible bit-for-bit from its seed.
package rng

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// Source is a deterministic stream of random variates. It wraps math/rand
// with the distributions needed by the Monte Carlo engine.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed. Equal seeds yield equal streams.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Norm returns a standard normal variate.
func (s *Source) Norm() float64 { return s.r.NormFloat64() }

// NormVec fills dst (allocated when nil, length n) with independent standard
// normal variates and returns it.
func (s *Source) NormVec(dst []float64, n int) []float64 {
	if dst == nil {
		dst = make([]float64, n)
	}
	for i := range dst {
		dst[i] = s.r.NormFloat64()
	}
	return dst
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Split derives an independent child stream. It consumes one value from the
// parent, so repeated Splits give distinct children.
func (s *Source) Split() *Source {
	return New(s.r.Int63())
}

// MVNormal samples from a zero-mean multivariate normal distribution with a
// pre-factored covariance Σ = L·Lᵀ.
type MVNormal struct {
	l   *linalg.Matrix // lower-triangular Cholesky factor of Σ
	dim int
}

// NewMVNormal builds a sampler from the covariance matrix sigma.
func NewMVNormal(sigma *linalg.Matrix) (*MVNormal, error) {
	chol, err := linalg.CholeskyFactor(sigma)
	if err != nil {
		return nil, fmt.Errorf("rng: covariance is not positive definite: %w", err)
	}
	return &MVNormal{l: chol.L(), dim: sigma.Rows}, nil
}

// Dim returns the dimensionality of the distribution.
func (mv *MVNormal) Dim() int { return mv.dim }

// Sample draws one vector into dst (allocated when nil) using src.
func (mv *MVNormal) Sample(src *Source, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, mv.dim)
	}
	z := src.NormVec(nil, mv.dim)
	// dst = L·z, exploiting the lower-triangular structure.
	for i := 0; i < mv.dim; i++ {
		row := mv.l.Row(i)
		s := 0.0
		for j := 0; j <= i; j++ {
			s += row[j] * z[j]
		}
		dst[i] = s
	}
	return dst
}

// LatinHypercube returns n samples in dim dimensions, each marginal being a
// stratified standard normal: one point per probability stratum, mapped
// through the normal quantile function. Stratification reduces the variance
// of the inner-product estimators in eq. (14) of the paper.
func LatinHypercube(src *Source, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
	}
	for d := 0; d < dim; d++ {
		perm := src.Perm(n)
		for i := 0; i < n; i++ {
			u := (float64(perm[i]) + src.Float64()) / float64(n)
			out[i][d] = NormQuantile(u)
		}
	}
	return out
}

// NormQuantile returns the standard normal quantile Φ⁻¹(p) using the
// Acklam rational approximation (relative error below 1.15e-9), refined by
// one Halley step against math.Erfc.
func NormQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients of the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// RowPoint deterministically regenerates the k-th standard-normal sampling
// point of a virtual dataset identified by seed, without any stored state.
// mc.SampleVirtual and basis.NewGeneratedDesign use the same mapping, which
// is what lets paper-scale experiments run in O(K + M) memory: the simulator
// consumes the points once and the design matrix re-derives them on demand.
//
// The generator is a splitmix64 stream keyed by (seed, k) feeding Box–Muller
// pairs: unlike math/rand it has no per-call seeding cost, which matters
// because regenerating designs call RowPoint once per row per pass.
func RowPoint(dst []float64, seed int64, k, dim int) []float64 {
	if dst == nil {
		dst = make([]float64, dim)
	}
	state := (uint64(seed)+0x9E3779B97F4A7C15)*0xBF58476D1CE4E5B9 ^ (uint64(k)+1)*0x94D049BB133111EB
	next := func() float64 {
		// splitmix64 step → uniform in (0, 1].
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		return (float64(z>>11) + 1) / (1 << 53)
	}
	for i := 0; i < dim; i += 2 {
		u1, u2 := next(), next()
		r := math.Sqrt(-2 * math.Log(u1))
		s, c := math.Sincos(2 * math.Pi * u2)
		dst[i] = r * c
		if i+1 < dim {
			dst[i+1] = r * s
		}
	}
	return dst
}

// primes are the bases for the Halton sequence (first 64 dims use distinct
// primes; higher dims cycle with re-randomized shifts, which keeps marginals
// uniform at the cost of some cross-dimension structure).
var haltonPrimes = []int{
	2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
	71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
	151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
	233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311,
}

// radicalInverse returns the base-b radical inverse of i in [0, 1).
func radicalInverse(i, b int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(b)
		r += f * float64(i%b)
		i /= b
	}
	return r
}

// Halton returns n quasi-Monte Carlo points in dim dimensions, mapped to
// standard-normal marginals through the quantile function. A Cranley–
// Patterson rotation drawn from src randomizes the sequence, so repeated
// calls give independent unbiased randomizations. QMC fills the space more
// evenly than iid sampling, reducing the variance of the inner-product
// estimators of eq. (14) for smooth integrands.
func Halton(src *Source, n, dim int) [][]float64 {
	shifts := make([]float64, dim)
	for d := range shifts {
		shifts[d] = src.Float64()
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			b := haltonPrimes[d%len(haltonPrimes)]
			u := radicalInverse(i+1, b) + shifts[d]
			if u >= 1 {
				u -= 1
			}
			// Clamp away from {0,1} so the quantile stays finite.
			if u < 1e-12 {
				u = 1e-12
			}
			if u > 1-1e-12 {
				u = 1 - 1e-12
			}
			out[i][d] = NormQuantile(u)
		}
	}
	return out
}
