package rng

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Norm() != b.Norm() {
			t.Fatal("equal seeds diverged")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	s := New(1)
	c1, c2 := s.Split(), s.Split()
	same := true
	for i := 0; i < 10; i++ {
		if c1.Norm() != c2.Norm() {
			same = false
		}
	}
	if same {
		t.Error("split children produced identical streams")
	}
}

func TestNormVecMoments(t *testing.T) {
	s := New(7)
	const n = 200000
	x := s.NormVec(nil, n)
	mean, m2 := 0.0, 0.0
	for _, v := range x {
		mean += v
	}
	mean /= n
	for _, v := range x {
		m2 += (v - mean) * (v - mean)
	}
	m2 /= n - 1
	if math.Abs(mean) > 0.01 {
		t.Errorf("sample mean %g too far from 0", mean)
	}
	if math.Abs(m2-1) > 0.02 {
		t.Errorf("sample variance %g too far from 1", m2)
	}
}

func TestMVNormalCovariance(t *testing.T) {
	sigma := linalg.NewMatrixFrom([][]float64{
		{2.0, 0.6, 0.0},
		{0.6, 1.0, -0.3},
		{0.0, -0.3, 0.5},
	})
	mv, err := NewMVNormal(sigma)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", mv.Dim())
	}
	src := New(11)
	const n = 100000
	cov := linalg.NewMatrix(3, 3)
	x := make([]float64, 3)
	for k := 0; k < n; k++ {
		mv.Sample(src, x)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				cov.Set(i, j, cov.At(i, j)+x[i]*x[j])
			}
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			got := cov.At(i, j) / n
			want := sigma.At(i, j)
			if math.Abs(got-want) > 0.05 {
				t.Errorf("cov(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestMVNormalRejectsIndefinite(t *testing.T) {
	sigma := linalg.NewMatrixFrom([][]float64{{1, 2}, {2, 1}})
	if _, err := NewMVNormal(sigma); err == nil {
		t.Fatal("expected error for indefinite covariance")
	}
}

func TestNormQuantileInverse(t *testing.T) {
	for _, p := range []float64{1e-8, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1 - 1e-8} {
		x := NormQuantile(p)
		back := 0.5 * math.Erfc(-x/math.Sqrt2)
		if math.Abs(back-p) > 1e-12*(1+p) && math.Abs(back-p) > 1e-14 {
			t.Errorf("Φ(Φ⁻¹(%g)) = %g", p, back)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("NormQuantile boundary values should be ±Inf")
	}
	if NormQuantile(0.5) != 0 && math.Abs(NormQuantile(0.5)) > 1e-15 {
		t.Errorf("NormQuantile(0.5) = %g, want 0", NormQuantile(0.5))
	}
}

func TestNormQuantileMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Mod(math.Abs(a), 1)
		pb := math.Mod(math.Abs(b), 1)
		if pa == 0 || pb == 0 || pa == pb {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormQuantile(pa) <= NormQuantile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	src := New(3)
	const n, dim = 64, 4
	pts := LatinHypercube(src, n, dim)
	if len(pts) != n || len(pts[0]) != dim {
		t.Fatalf("got %dx%d design", len(pts), len(pts[0]))
	}
	// Each dimension must contain exactly one point per stratum: mapping the
	// values back through Φ and multiplying by n must give distinct integer
	// bins 0..n-1.
	for d := 0; d < dim; d++ {
		bins := make([]int, 0, n)
		for i := 0; i < n; i++ {
			u := 0.5 * math.Erfc(-pts[i][d]/math.Sqrt2)
			bins = append(bins, int(u*float64(n)))
		}
		sort.Ints(bins)
		for i, b := range bins {
			if b != i {
				t.Fatalf("dimension %d is not stratified: bins %v", d, bins)
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(5).Perm(30)
	seen := make([]bool, 30)
	for _, v := range p {
		if v < 0 || v >= 30 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRowPointDeterministicAndDistinct(t *testing.T) {
	a := RowPoint(nil, 7, 3, 10)
	b := RowPoint(nil, 7, 3, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RowPoint not deterministic")
		}
	}
	c := RowPoint(nil, 7, 4, 10)
	d := RowPoint(nil, 8, 3, 10)
	sameC, sameD := true, true
	for i := range a {
		if a[i] != c[i] {
			sameC = false
		}
		if a[i] != d[i] {
			sameD = false
		}
	}
	if sameC || sameD {
		t.Error("distinct rows/seeds produced identical points")
	}
}

func TestRowPointMoments(t *testing.T) {
	const rows, dim = 4000, 25
	var sum, sq float64
	pt := make([]float64, dim)
	n := 0
	for k := 0; k < rows; k++ {
		RowPoint(pt, 99, k, dim)
		for _, v := range pt {
			sum += v
			sq += v * v
			n++
		}
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("RowPoint mean %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("RowPoint variance %g, want ~1", variance)
	}
}

func TestRowPointOddDimension(t *testing.T) {
	pt := RowPoint(nil, 1, 0, 7)
	if len(pt) != 7 {
		t.Fatalf("length %d", len(pt))
	}
	for _, v := range pt {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite variate")
		}
	}
}

func TestRadicalInverse(t *testing.T) {
	// Base 2: 1 → 0.5, 2 → 0.25, 3 → 0.75.
	cases := map[int]float64{1: 0.5, 2: 0.25, 3: 0.75, 4: 0.125}
	for i, want := range cases {
		if got := radicalInverse(i, 2); math.Abs(got-want) > 1e-15 {
			t.Errorf("radicalInverse(%d, 2) = %g, want %g", i, got, want)
		}
	}
}

func TestHaltonMomentsAndDeterminism(t *testing.T) {
	src := New(40)
	pts := Halton(src, 5000, 8)
	if len(pts) != 5000 || len(pts[0]) != 8 {
		t.Fatalf("got %dx%d design", len(pts), len(pts[0]))
	}
	for d := 0; d < 8; d++ {
		var sum, sq float64
		for _, p := range pts {
			sum += p[d]
			sq += p[d] * p[d]
		}
		mean := sum / 5000
		variance := sq/5000 - mean*mean
		if math.Abs(mean) > 0.03 {
			t.Errorf("dim %d mean %g", d, mean)
		}
		if math.Abs(variance-1) > 0.05 {
			t.Errorf("dim %d variance %g", d, variance)
		}
	}
	// Same seed → same randomization.
	again := Halton(New(40), 10, 8)
	for i := range again {
		for d := range again[i] {
			if again[i][d] != pts[i][d] {
				t.Fatal("Halton not deterministic in the seed")
			}
		}
	}
}

func TestHaltonBeatsMCOnSmoothIntegral(t *testing.T) {
	// Estimate E[y0·y1] (= 0) with K points: the QMC estimator's spread over
	// independent randomizations should be well below plain MC's.
	const k, trials = 256, 40
	spread := func(qmc bool) float64 {
		var ests []float64
		for tr := 0; tr < trials; tr++ {
			src := New(int64(100 + tr))
			var pts [][]float64
			if qmc {
				pts = Halton(src, k, 2)
			} else {
				pts = make([][]float64, k)
				for i := range pts {
					pts[i] = src.NormVec(nil, 2)
				}
			}
			s := 0.0
			for _, p := range pts {
				s += p[0] * p[1]
			}
			ests = append(ests, s/k)
		}
		var m, v float64
		for _, e := range ests {
			m += e
		}
		m /= trials
		for _, e := range ests {
			v += (e - m) * (e - m)
		}
		return math.Sqrt(v / trials)
	}
	mc, qmc := spread(false), spread(true)
	if qmc >= mc {
		t.Errorf("QMC spread %g not below MC %g", qmc, mc)
	}
}
