package faultinject

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestUnarmedIsNoop(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("enabled with nothing armed")
	}
	if err := Fire("anything"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestErrorFaultWithCount(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm("p", Fault{Err: ErrInjected, Count: 2})
	for i := 0; i < 2; i++ {
		if err := Fire("p"); !errors.Is(err, ErrInjected) {
			t.Fatalf("fire %d: %v, want ErrInjected", i, err)
		}
	}
	if err := Fire("p"); err != nil {
		t.Fatalf("count exhausted but still fired: %v", err)
	}
}

func TestPanicFault(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm("boom", Fault{Panic: true})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic message %v", r)
		}
	}()
	_ = Fire("boom")
}

func TestDelayHonorsContext(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm("slow", Fault{Delay: time.Minute, Err: ErrInjected})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := FireCtx(ctx, "slow"); err != nil {
		t.Fatalf("context-cut delay should not return the fault error, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay ignored the context")
	}
}

func TestConfigure(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	err := Configure("a=panic#1; b=error:disk full; c=delay:5ms")
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("not enabled after Configure")
	}
	if err := Fire("b"); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("error fault: %v", err)
	}
	start := time.Now()
	if err := Fire("c"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("delay fault did not delay")
	}
	func() {
		defer func() { _ = recover() }()
		_ = Fire("a")
		t.Error("armed panic did not panic")
	}()
	// a's count is exhausted now.
	if err := Fire("a"); err != nil {
		t.Fatalf("exhausted panic point fired: %v", err)
	}
	for _, bad := range []string{"nope", "x=frob", "x=panic#0", "x=delay:zz"} {
		if err := Configure(bad); err == nil {
			t.Errorf("Configure(%q) accepted", bad)
		}
	}
}
