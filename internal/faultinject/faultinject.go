// Package faultinject provides gated fault hooks for chaos testing the
// serving path. Production code marks interesting points with Fire("name");
// when nothing is armed that is a single atomic load, so the hooks are free
// to leave compiled in. Tests (and operators, via the rsmd -faults flag or
// the RSMD_FAULTS environment variable) arm individual points to panic,
// stall, or fail, which lets the chaos suite prove that the daemon degrades
// gracefully instead of falling over.
//
// Spec grammar (flag/env form), semicolon-separated:
//
//	point=panic            panic at the point
//	point=error            return a generic injected error
//	point=error:message    return an injected error with the given message
//	point=delay:250ms      sleep at the point (context-aware via FireCtx)
//
// An action may carry a "#N" suffix to fire only N times, e.g.
// "server.fit=panic#1". Points armed without a count fire on every hit until
// Reset.
//
// Well-known points (see their call sites):
//
//	server.fit      start of a fit job's worker execution
//	server.pipeline start of a pipeline job's worker execution
//	server.predict  predict handler, after model lookup
//	registry.write  registry persistence, between temp write and rename
//	journal.append  job-journal record append, before the write+fsync
//	                (error simulates a full disk: submits degrade to 503)
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the base error returned by error-armed points; injected
// failures can be recognized with errors.Is.
var ErrInjected = errors.New("injected fault")

// Fault describes what happens when an armed point fires.
type Fault struct {
	// Panic makes the point panic with a recognizable message.
	Panic bool
	// Delay stalls the point. FireCtx returns early (without the fault's
	// error) when the context expires first.
	Delay time.Duration
	// Err is returned by the point when non-nil.
	Err error
	// Count limits how many times the fault fires; 0 means unlimited.
	Count int
}

var (
	mu     sync.Mutex
	points map[string]*armedFault
	active atomic.Int32 // number of armed points; fast-path gate
)

type armedFault struct {
	fault     Fault
	remaining int // decremented per fire when fault.Count > 0
}

// Arm installs a fault at the named point, replacing any previous one.
func Arm(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*armedFault)
	}
	if _, exists := points[point]; !exists {
		active.Add(1)
	}
	points[point] = &armedFault{fault: f, remaining: f.Count}
}

// Disarm removes the fault at the named point.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := points[point]; exists {
		delete(points, point)
		active.Add(-1)
	}
}

// Reset disarms every point.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	active.Store(0)
}

// Enabled reports whether any point is armed.
func Enabled() bool { return active.Load() > 0 }

// Configure arms points from a spec string (see the package comment for the
// grammar). An empty spec is a no-op.
func Configure(spec string) error {
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		point, action, ok := strings.Cut(clause, "=")
		if !ok || point == "" {
			return fmt.Errorf("faultinject: bad clause %q (want point=action)", clause)
		}
		var f Fault
		if base, countStr, ok := strings.Cut(action, "#"); ok {
			n, err := strconv.Atoi(countStr)
			if err != nil || n < 1 {
				return fmt.Errorf("faultinject: bad count in %q", clause)
			}
			f.Count = n
			action = base
		}
		kind, arg, _ := strings.Cut(action, ":")
		switch kind {
		case "panic":
			f.Panic = true
		case "error":
			if arg == "" {
				f.Err = ErrInjected
			} else {
				f.Err = fmt.Errorf("%w: %s", ErrInjected, arg)
			}
		case "delay":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fmt.Errorf("faultinject: bad delay in %q: %v", clause, err)
			}
			f.Delay = d
		default:
			return fmt.Errorf("faultinject: unknown action %q in %q", kind, clause)
		}
		Arm(point, f)
	}
	return nil
}

// take claims one firing of the point, or returns nil when the point is not
// armed (or its count is exhausted).
func take(point string) *Fault {
	mu.Lock()
	defer mu.Unlock()
	af := points[point]
	if af == nil {
		return nil
	}
	if af.fault.Count > 0 {
		if af.remaining <= 0 {
			return nil
		}
		af.remaining--
	}
	f := af.fault
	return &f
}

// Fire triggers the point with no cancellation: delays sleep in full.
func Fire(point string) error { return FireCtx(context.Background(), point) }

// FireCtx triggers the named point. When the point is unarmed it returns nil
// after one atomic load. An armed point first applies its delay (cut short,
// without error, when ctx expires), then panics or returns its error.
func FireCtx(ctx context.Context, point string) error {
	if active.Load() == 0 {
		return nil
	}
	f := take(point)
	if f == nil {
		return nil
	}
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil
		}
	}
	if f.Panic {
		panic(fmt.Sprintf("faultinject: injected panic at %q", point))
	}
	return f.Err
}
