// Command rsmfit fits a sparse response surface model to a CSV dataset
// (as produced by mcgen): it selects the important basis functions with the
// chosen solver, picks the sparsity level by cross-validation, and prints
// the selected bases with their coefficients. With -out the fitted model is
// saved as a versioned envelope (coefficients + basis descriptor + fit
// provenance) that rsmd can serve and -model can reload.
//
// Example:
//
//	mcgen -circuit opamp -n 600 -seed 1 > train.csv
//	rsmfit -metric offset -solver omp -degree 1 -out offset.json < train.csv
//
//	# Later, without refitting — the offline mirror of rsmd's predict
//	# endpoint (prints one prediction per row of points.csv):
//	rsmfit -model offset.json -predict points.csv
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/stats"
	"repro/rsm"
)

func main() {
	log.SetFlags(0)
	var (
		metric     = flag.String("metric", "", "metric column to model (default: first)")
		solver     = flag.String("solver", "omp", "solver: omp|lar|lasso|star|cd|stomp")
		degree     = flag.Int("degree", 1, "polynomial degree of the Hermite basis (1 or 2)")
		folds      = flag.Int("folds", 4, "cross-validation folds")
		maxLambda  = flag.Int("lambda", 50, "maximum number of selected basis functions")
		input      = flag.String("in", "-", "input CSV path (- for stdin)")
		output     = flag.String("out", "", "write the fitted model envelope as JSON to this path")
		modelPath  = flag.String("model", "", "load a saved model envelope instead of fitting")
		predict    = flag.String("predict", "", "with -model: predict at the points of this CSV (- for stdin)")
		fitWorkers = flag.Int("fit-workers", 0, "solver engine correlation-sweep goroutines (0 = GOMAXPROCS)")
		pipePath   = flag.String("pipeline", "", "SPICE netlist path: run a netlist-in, model-out pipeline on an rsmd daemon (requires -spec, -server, -name)")
		pipeSpec   = flag.String("spec", "", "with -pipeline: pipeline spec JSON path (variation, measure, sampling, fit)")
		pipeServer = flag.String("server", "", "with -pipeline: rsmd base URL, e.g. http://localhost:8080")
		pipeName   = flag.String("name", "", "with -pipeline: registry name for the published model")
		watch      = flag.Bool("watch", false, "with -pipeline: tail the job's live event stream (SSE) instead of polling")
		refine     = flag.String("refine", "", "model name: continue its fit on an rsmd daemon with the input CSV's new samples (requires -server)")
	)
	flag.Parse()

	if *pipePath != "" {
		runPipeline(*pipePath, *pipeSpec, *pipeServer, *pipeName, *watch)
		return
	}
	if *refine != "" {
		// -folds / -lambda override the parent fit's settings only when set
		// explicitly; their flag defaults mean "inherit".
		var req rsm.RefineRequest
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "folds":
				req.Folds = *folds
			case "lambda":
				req.MaxLambda = *maxLambda
			}
		})
		runRefine(*refine, *pipeServer, *input, req)
		return
	}
	if *watch {
		log.Fatal("rsmfit: -watch requires -pipeline")
	}
	if *modelPath != "" {
		if *predict == "" {
			log.Fatal("rsmfit: -model requires -predict points.csv")
		}
		runPredict(*modelPath, *predict)
		return
	}
	if *predict != "" {
		log.Fatal("rsmfit: -predict requires -model model.json")
	}

	ds := readDataset(*input)
	if ds.Len() == 0 {
		log.Fatal("rsmfit: empty dataset")
	}
	name := *metric
	if name == "" {
		name = ds.Metrics[0]
	}
	f, err := ds.Metric(name)
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}

	dim := len(ds.Points[0])
	var b *basis.Basis
	switch *degree {
	case 1:
		b = basis.Linear(dim)
	case 2:
		b = basis.Quadratic(dim)
	default:
		log.Fatalf("rsmfit: unsupported degree %d", *degree)
	}

	fitter, err := core.SolverByName(*solver)
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}

	d := basis.NewLazyDesign(b, ds.Points)
	ctx := core.WithFitWorkers(context.Background(), *fitWorkers)
	cv, err := core.CrossValidateCtx(ctx, fitter, d, f, *folds, *maxLambda)
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	model := cv.Model
	pred := model.Predict(d)
	trainErr := stats.RelativeRMSError(pred, f)

	fmt.Printf("metric:          %s\n", name)
	fmt.Printf("samples:         %d\n", ds.Len())
	fmt.Printf("dictionary size: %d (degree-%d Hermite basis over %d variables)\n", b.Size(), *degree, dim)
	fmt.Printf("solver:          %s, %d-fold CV\n", fitter.Name(), *folds)
	fmt.Printf("selected λ:      %d (CV error %.3f%%)\n", cv.BestLambda, 100*cv.ErrCurve[cv.BestLambda-1])
	fmt.Printf("training error:  %.3f%%\n\n", 100*trainErr)
	fmt.Println("selected basis functions (selection order):")
	for i, idx := range model.Support {
		fmt.Printf("  %3d  %-24s % .6e\n", idx, b.Terms[idx].String(), model.Coef[i])
	}
	if *output != "" {
		out, err := os.Create(*output)
		if err != nil {
			log.Fatalf("rsmfit: %v", err)
		}
		defer out.Close()
		env := &core.Envelope{
			Model: model,
			Basis: b.Desc,
			Prov: core.Provenance{
				Solver:  fitter.Name(),
				Lambda:  cv.BestLambda,
				CVError: cv.ErrCurve[cv.BestLambda-1],
				Folds:   *folds,
				Samples: ds.Len(),
				Metric:  name,
			},
		}
		if err := core.WriteEnvelope(out, env); err != nil {
			log.Fatalf("rsmfit: %v", err)
		}
		fmt.Printf("\nmodel envelope written to %s\n", *output)
	}
}

// runPipeline drives a remote netlist-in, model-out pipeline: it submits
// the deck and spec to an rsmd daemon, waits for the job, and prints the
// stage timeline with its simulation-vs-regression cost split plus the
// published model — the paper's end-to-end flow as one command.
func runPipeline(deckPath, specPath, serverURL, name string, watch bool) {
	if specPath == "" || serverURL == "" || name == "" {
		log.Fatal("rsmfit: -pipeline requires -spec spec.json, -server URL and -name model-name")
	}
	deck, err := os.ReadFile(deckPath)
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	specJSON, err := os.ReadFile(specPath)
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	var spec rsm.PipelineSpec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		log.Fatalf("rsmfit: -spec %s: %v", specPath, err)
	}

	ctx := context.Background()
	client := rsm.NewClient(serverURL)
	id, err := client.RunPipeline(ctx, rsm.PipelineRequest{Name: name, Netlist: string(deck), Spec: spec})
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	fmt.Printf("pipeline job:    %s\n", id)
	var st *rsm.JobStatus
	if watch {
		st, err = client.WatchJob(ctx, id, printJobEvent)
	} else {
		st, err = client.WaitPipeline(ctx, id, 200*time.Millisecond)
	}
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	res := st.Pipeline
	if res == nil {
		log.Fatalf("rsmfit: job %s finished without a pipeline result", id)
	}

	fmt.Printf("model:           %s@v%d\n", res.Model.Name, res.Model.Version)
	fmt.Printf("metric:          %s over %d variables\n", res.Metric, res.Dim)
	fmt.Printf("solver:          %s, λ=%d (CV error %.3f%%)\n", res.Solver, res.Lambda, 100*res.CVError)
	fmt.Printf("samples:         %d", res.Samples)
	if res.Rounds > 0 {
		fmt.Printf(" (%d adaptive rounds, converged=%t)", res.Rounds, res.Converged)
	}
	fmt.Printf("\ncost:            %.2fs simulation, %.2fs regression\n", res.SimSeconds, res.FitSeconds)
	if len(res.Trials) > 0 {
		fmt.Println("solver trials:")
		for _, tr := range res.Trials {
			fmt.Printf("  %-8s λ=%-3d CV error %.3f%%  (%.2fs)\n", tr.Solver, tr.Lambda, 100*tr.CVError, tr.Seconds)
		}
	}
	fmt.Println("stages:")
	for _, stage := range st.Stages {
		fmt.Printf("  %-8s %8.3fs", stage.Stage, stage.Seconds)
		if stage.Samples > 0 {
			fmt.Printf("  samples=%d", stage.Samples)
		}
		if stage.Detail != "" {
			fmt.Printf("  %s", stage.Detail)
		}
		fmt.Println()
	}
}

// runRefine drives a remote incremental refit: it ships the input CSV's
// samples to POST /v1/models/{name}/refine, waits for the job, and prints
// whether the continued fit beat the parent's cross-validation error and
// was published as a new version.
func runRefine(name, serverURL, input string, req rsm.RefineRequest) {
	if serverURL == "" {
		log.Fatal("rsmfit: -refine requires -server URL")
	}
	var csvData []byte
	var err error
	if input == "-" {
		csvData, err = io.ReadAll(os.Stdin)
	} else {
		csvData, err = os.ReadFile(input)
	}
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	req.CSV = string(csvData)

	ctx := context.Background()
	client := rsm.NewClient(serverURL)
	id, err := client.Refine(ctx, name, req)
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	fmt.Printf("refine job:      %s\n", id)
	st, err := client.WaitRefine(ctx, id, 200*time.Millisecond)
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	r := st.Refine
	if r == nil {
		log.Fatalf("rsmfit: job %s finished without a refine result", id)
	}
	mode := "cold refit"
	if r.Warm {
		mode = "warm continuation"
	}
	fmt.Printf("parent:          %s@v%d (CV error %.3f%%)\n", name, r.ParentVersion, 100*r.ParentCVError)
	fmt.Printf("samples:         %d (+%d new)\n", r.Samples, r.AppendedSamples)
	fmt.Printf("refit:           λ=%d, CV error %.3f%% (%s, %.2fs)\n", r.Lambda, 100*r.CVError, mode, r.FitSeconds)
	switch r.Outcome {
	case rsm.RefineImproved:
		fmt.Printf("published:       %s@v%d (checkpoint %d bytes)\n", r.Model.Name, r.Model.Version, r.CheckpointBytes)
	default:
		fmt.Printf("rejected:        CV error did not improve; %s@v%d keeps serving\n", r.Model.Name, r.Model.Version)
	}
}

// printJobEvent renders one streamed job event for -watch: lifecycle
// transitions, completed pipeline stages, and per-iteration solver
// telemetry as it happens.
func printJobEvent(ev rsm.JobEvent) {
	switch ev.Type {
	case rsm.JobEventState:
		fmt.Printf("  [%4d] state  %s", ev.Seq, ev.State)
		if ev.Error != "" {
			fmt.Printf("  (%s)", ev.Error)
		}
		fmt.Println()
	case rsm.JobEventStage:
		s := ev.Stage
		if s == nil {
			return
		}
		if s.Error != "" {
			fmt.Printf("  [%4d] stage  %-8s failed after %.3fs: %s\n", ev.Seq, s.Stage, s.Seconds, s.Error)
			return
		}
		fmt.Printf("  [%4d] stage  %-8s %8.3fs", ev.Seq, s.Stage, s.Seconds)
		if s.Samples > 0 {
			fmt.Printf("  samples=%d", s.Samples)
		}
		if s.Detail != "" {
			fmt.Printf("  %s", s.Detail)
		}
		fmt.Println()
	case rsm.JobEventFit:
		f := ev.Fit
		if f == nil {
			return
		}
		fmt.Printf("  [%4d] fit    %-14s iter=%-3d active=%-3d residual=%.3e\n",
			ev.Seq, f.Stage, f.Iter, f.Active, f.Residual)
	}
}

// readDataset loads a CSV dataset from a path or stdin.
func readDataset(path string) *mc.Dataset {
	r := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			log.Fatalf("rsmfit: %v", err)
		}
		defer f.Close()
		r = f
	}
	ds, err := mc.ReadCSV(r)
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	return ds
}

// runPredict reloads a saved model envelope and evaluates it at every point
// of a CSV file, printing one prediction per line. When the CSV also
// contains the model's metric column, the relative RMS error against it is
// reported on stderr.
func runPredict(modelPath, pointsPath string) {
	mf, err := os.Open(modelPath)
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	env, err := core.ReadEnvelope(mf)
	mf.Close()
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	if env.Basis.IsZero() {
		log.Fatalf("rsmfit: %s is a legacy model without a basis descriptor; refit with -out to upgrade it", modelPath)
	}
	b, err := env.Basis.Build()
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	ds := readDataset(pointsPath)
	if ds.Len() == 0 {
		log.Fatal("rsmfit: empty points file")
	}
	if len(ds.Points[0]) != b.Dim {
		log.Fatalf("rsmfit: points have dimension %d but model basis is %s", len(ds.Points[0]), env.Basis)
	}
	pred := env.Model.PredictBatch(b, nil, ds.Points, 0)
	for _, v := range pred {
		fmt.Printf("%.17g\n", v)
	}
	if env.Prov.Metric != "" {
		if truth, err := ds.Metric(env.Prov.Metric); err == nil {
			log.Printf("rsmfit: relative RMS error vs %q column: %.3f%%",
				env.Prov.Metric, 100*stats.RelativeRMSError(pred, truth))
		}
	}
}
