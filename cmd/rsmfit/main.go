// Command rsmfit fits a sparse response surface model to a CSV dataset
// (as produced by mcgen): it selects the important basis functions with the
// chosen solver, picks the sparsity level by cross-validation, and prints
// the selected bases with their coefficients.
//
// Example:
//
//	mcgen -circuit opamp -n 600 -seed 1 > train.csv
//	rsmfit -metric offset -solver omp -degree 1 < train.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	var (
		metric    = flag.String("metric", "", "metric column to model (default: first)")
		solver    = flag.String("solver", "omp", "solver: omp|lar|lasso|star|cd|stomp")
		degree    = flag.Int("degree", 1, "polynomial degree of the Hermite basis (1 or 2)")
		folds     = flag.Int("folds", 4, "cross-validation folds")
		maxLambda = flag.Int("lambda", 50, "maximum number of selected basis functions")
		input     = flag.String("in", "-", "input CSV path (- for stdin)")
		output    = flag.String("out", "", "write the fitted model as JSON to this path")
	)
	flag.Parse()

	r := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			log.Fatalf("rsmfit: %v", err)
		}
		defer f.Close()
		r = f
	}
	ds, err := mc.ReadCSV(r)
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	if ds.Len() == 0 {
		log.Fatal("rsmfit: empty dataset")
	}
	name := *metric
	if name == "" {
		name = ds.Metrics[0]
	}
	f, err := ds.Metric(name)
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}

	dim := len(ds.Points[0])
	var b *basis.Basis
	switch *degree {
	case 1:
		b = basis.Linear(dim)
	case 2:
		b = basis.Quadratic(dim)
	default:
		log.Fatalf("rsmfit: unsupported degree %d", *degree)
	}

	var fitter core.PathFitter
	switch *solver {
	case "omp":
		fitter = &core.OMP{}
	case "lar":
		fitter = &core.LAR{}
	case "lasso":
		fitter = &core.LAR{Lasso: true}
	case "star":
		fitter = &core.STAR{}
	case "cd":
		fitter = &core.CD{Refit: true}
	case "stomp":
		fitter = &core.StOMP{}
	default:
		log.Fatalf("rsmfit: unknown solver %q", *solver)
	}

	d := basis.NewLazyDesign(b, ds.Points)
	cv, err := core.CrossValidate(fitter, d, f, *folds, *maxLambda)
	if err != nil {
		log.Fatalf("rsmfit: %v", err)
	}
	model := cv.Model
	pred := model.Predict(d)
	trainErr := stats.RelativeRMSError(pred, f)

	fmt.Printf("metric:          %s\n", name)
	fmt.Printf("samples:         %d\n", ds.Len())
	fmt.Printf("dictionary size: %d (degree-%d Hermite basis over %d variables)\n", b.Size(), *degree, dim)
	fmt.Printf("solver:          %s, %d-fold CV\n", fitter.Name(), *folds)
	fmt.Printf("selected λ:      %d (CV error %.3f%%)\n", cv.BestLambda, 100*cv.ErrCurve[cv.BestLambda-1])
	fmt.Printf("training error:  %.3f%%\n\n", 100*trainErr)
	fmt.Println("selected basis functions (selection order):")
	for i, idx := range model.Support {
		fmt.Printf("  %3d  %-24s % .6e\n", idx, b.Terms[idx].String(), model.Coef[i])
	}
	if *output != "" {
		out, err := os.Create(*output)
		if err != nil {
			log.Fatalf("rsmfit: %v", err)
		}
		defer out.Close()
		if err := model.WriteJSON(out); err != nil {
			log.Fatalf("rsmfit: %v", err)
		}
		fmt.Printf("\nmodel written to %s\n", *output)
	}
}
