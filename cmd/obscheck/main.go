// Command obscheck is the observability smoke check behind `make obs`: it
// boots the rsmd serving stack in-process on a loopback port, drives real
// traffic through it (model upload, predictions, one async fit job to
// completion), then scrapes GET /metrics in Prometheus text format and
// validates the exposition promtool-style — well-formed sample lines, TYPE
// metadata, ascending cumulative `le` buckets, +Inf terminators matching
// _count. Any malformed output, missing metric family, or zero fit
// histogram is a non-zero exit, so CI fails the moment the exposition
// regresses.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"regexp"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/rsm"
)

func main() {
	if err := check(); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck: FAIL:", err)
		os.Exit(1)
	}
	if err := checkCluster(); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck: FAIL (cluster):", err)
		os.Exit(1)
	}
	fmt.Println("obscheck: OK — Prometheus exposition valid")
}

func check() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := server.New(registry.New(), server.Config{FitWorkers: 1, Logger: logger})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	c := rsm.NewClient(base)

	// Drive enough traffic to populate every metric family: a fit job (fit
	// and queue histograms, job counters, telemetry) and predictions.
	id, err := c.SubmitFit(ctx, rsm.FitRequest{Name: "obscheck", Folds: 2, MaxLambda: 3,
		Points: [][]float64{{0.1, 0.2}, {0.3, -0.4}, {-0.5, 0.6}, {0.7, 0.8}, {0.2, -0.6}, {-0.3, 0.5}},
		Values: []float64{1, 2, 3, 4, 5, 6}})
	if err != nil {
		return fmt.Errorf("submit fit: %w", err)
	}
	st, err := c.WaitJob(ctx, id, 20*time.Millisecond)
	if err != nil {
		return fmt.Errorf("fit job: %w", err)
	}
	if len(st.Events) == 0 {
		return fmt.Errorf("completed fit job %s has no telemetry events", id)
	}
	if _, err := c.Predict(ctx, "obscheck", [][]float64{{0.0, 0.0}, {0.5, -0.5}}); err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	// A refine populates the incremental-refit families: refine job
	// counters, the publish-gate outcome counter, the warm/cold fit
	// histogram and the per-model checkpoint size gauge.
	refID, err := c.Refine(ctx, "obscheck", rsm.RefineRequest{
		Points: [][]float64{{0.4, 0.1}, {-0.2, 0.3}, {0.6, -0.1}, {-0.4, -0.3}},
		Values: []float64{2.5, 1.5, 3.5, 0.5}})
	if err != nil {
		return fmt.Errorf("submit refine: %w", err)
	}
	rst, err := c.WaitRefine(ctx, refID, 20*time.Millisecond)
	if err != nil {
		return fmt.Errorf("refine job: %w", err)
	}
	if rst.Refine == nil || rst.Refine.Outcome == "" {
		return fmt.Errorf("completed refine job %s reports no outcome", refID)
	}

	// Scrape exactly as Prometheus would.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("scrape: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return fmt.Errorf("scrape content type %q, want text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("scrape read: %w", err)
	}

	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		return fmt.Errorf("malformed exposition: %w", err)
	}
	for _, family := range []string{
		"rsmd_uptime_seconds", "rsmd_http_requests_total",
		"rsmd_http_request_duration_seconds_bucket", "rsmd_predictions_total",
		"rsmd_jobs_total", "rsmd_fit_duration_seconds_bucket", "rsmd_fit_iterations_bucket",
		"rsmd_job_queue_depth", "rsmd_job_queue_wait_seconds_bucket",
		"rsmd_goroutines", "rsmd_heap_alloc_bytes", "rsmd_gc_cycles_total",
		"rsmd_refines_submitted_total", "rsmd_refits_total",
		"rsmd_refine_fit_seconds_bucket", "rsmd_checkpoint_bytes",
		"rsmd_cluster_enabled", "rsmd_cluster_forwards_total",
		"rsmd_cluster_forward_errors_total", "rsmd_cluster_redirects_total",
		"rsmd_cluster_replica_reads_total",
	} {
		if !strings.Contains(string(body), family) {
			return fmt.Errorf("exposition missing family %s", family)
		}
	}
	for _, pat := range []string{
		`rsmd_cluster_enabled 0`,
		`rsmd_cluster_forwards_total\{kind="predict"\} 0`,
		`rsmd_jobs_total\{state="done"\} 1`,
		`rsmd_fit_duration_seconds_count [1-9]`,
		`rsmd_job_queue_wait_seconds_count [1-9]`,
		`rsmd_predictions_total\{model="obscheck"\} 2`,
		`rsmd_build_info\{[^}]*version="[^"]+"[^}]*\} 1`,
		`rsmd_traces_kept_total [1-9]`,
		`rsmd_refine_jobs_total\{state="done"\} 1`,
		`rsmd_refits_total\{outcome="(improved|rejected)"\} 1`,
		`rsmd_refine_fit_seconds_count\{mode="warm"\} 1`,
		`rsmd_checkpoint_bytes\{model="obscheck"\} [1-9]`,
	} {
		if !regexp.MustCompile(pat).MatchString(string(body)) {
			return fmt.Errorf("exposition does not reflect driven traffic: no match for %s", pat)
		}
	}
	return checkTracing(ctx, c, base, id, rst.TraceID, string(body))
}

// checkCluster validates the rsmd_cluster_* exposition against a live
// 2-node shard ring: it forces one forwarded upload and predict, runs a
// replication round, and requires the scrape to reflect the ring topology,
// the forwards, the pull counters and per-peer health.
func checkCluster() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	var lns [2]net.Listener
	var urls [2]string
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	var clus [2]*cluster.Cluster
	for i := range lns {
		reg := registry.New()
		cl, err := cluster.New(reg, cluster.Config{
			Self: urls[i], Peers: urls[:], SyncInterval: -1, Logger: logger,
		})
		if err != nil {
			return err
		}
		clus[i] = cl
		srv, err := server.New(reg, server.Config{FitWorkers: 1, Cluster: cl, Logger: logger})
		if err != nil {
			return err
		}
		defer srv.Close()
		hs := &http.Server{Handler: srv}
		go hs.Serve(lns[i])
		defer hs.Close()
	}

	// A model owned by node 1, driven through node 0: both a forwarded
	// write and a forwarded read land in node 0's counters.
	name := ""
	for i := 0; i < 10000 && name == ""; i++ {
		n := fmt.Sprintf("obscluster-%d", i)
		if _, u, _ := clus[0].Owner(n); u == urls[1] {
			name = n
		}
	}
	c := rsm.NewClient(urls[0])
	env := &rsm.Envelope{
		Model: &rsm.Model{M: 3, Support: []int{1, 2}, Coef: []float64{2, -3}},
		Basis: rsm.LinearBasis(2).Desc,
		Prov:  rsm.Provenance{Solver: "OMP", Lambda: 2, Metric: "f"},
	}
	if _, err := c.UploadModel(ctx, name, env); err != nil {
		return fmt.Errorf("forwarded upload: %w", err)
	}
	if _, err := c.Predict(ctx, name, [][]float64{{0.1, -0.2}}); err != nil {
		return fmt.Errorf("forwarded predict: %w", err)
	}
	if err := clus[0].SyncOnce(ctx); err != nil {
		return fmt.Errorf("sync round: %w", err)
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, urls[0]+"/metrics", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("cluster scrape: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("cluster scrape read: %w", err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		return fmt.Errorf("malformed cluster exposition: %w", err)
	}
	self := clus[0].SelfName()
	for _, pat := range []string{
		`rsmd_cluster_enabled 1`,
		`rsmd_cluster_node_info\{node="` + self + `"\} 1`,
		`rsmd_cluster_forwards_total\{kind="upload"\} 1`,
		`rsmd_cluster_forwards_total\{kind="predict"\} 1`,
		`rsmd_cluster_forward_errors_total 0`,
		`rsmd_cluster_syncs_total 1`,
		`rsmd_cluster_versions_pulled_total 1`,
		`rsmd_cluster_checkpoints_pulled_total \d+`,
		`rsmd_cluster_tombstones_applied_total \d+`,
		`rsmd_cluster_peer_up\{peer="[^"]+"\} 1`,
		`rsmd_cluster_peer_lag_versions\{peer="[^"]+"\} 0`,
	} {
		if !regexp.MustCompile(pat).MatchString(string(body)) {
			return fmt.Errorf("cluster exposition: no match for %s", pat)
		}
	}
	return nil
}

// checkTracing validates the tracing read side against the traffic the
// metrics check drove: the fit job must resolve to a span tree at least
// four levels deep, the fit-duration histogram must carry an exemplar whose
// trace_id is fetchable from /v1/traces, and the job event timeline must
// replay over both JSON and SSE.
func checkTracing(ctx context.Context, c *rsm.Client, base, jobID, refineTraceID, exposition string) error {
	// The job trace: request → job → fit → CV folds.
	jt, err := c.JobTrace(ctx, jobID)
	if err != nil {
		return fmt.Errorf("job trace: %w", err)
	}
	if !jt.Complete || jt.Root == nil {
		return fmt.Errorf("job %s trace incomplete (complete=%t)", jobID, jt.Complete)
	}
	if jt.Depth < 4 {
		return fmt.Errorf("job %s trace depth %d, want ≥ 4 (request → job → fit → folds)", jobID, jt.Depth)
	}

	// The exemplar loop: histogram bucket → trace_id → stored trace.
	exRe := regexp.MustCompile(`rsmd_fit_duration_seconds_bucket\{[^}]*\} \d+ # \{trace_id="([0-9a-f]+)"\}`)
	m := exRe.FindStringSubmatch(exposition)
	if m == nil {
		return fmt.Errorf("no exemplar on rsmd_fit_duration_seconds_bucket")
	}
	tr, err := c.Trace(ctx, m[1])
	if err != nil {
		return fmt.Errorf("exemplar trace_id %s does not resolve: %w", m[1], err)
	}
	// The fit-duration histogram is fed by both the fit and the refine job;
	// whichever bucket carries the exemplar, it must point at one of them.
	if tr.TraceID != jt.TraceID && tr.TraceID != refineTraceID {
		return fmt.Errorf("exemplar resolves to trace %s, want fit %s or refine %s",
			tr.TraceID, jt.TraceID, refineTraceID)
	}

	// The trace list sees the job trace (pinned, so sampling never drops it).
	traces, err := c.Traces(ctx)
	if err != nil {
		return fmt.Errorf("trace list: %w", err)
	}
	found := false
	for _, s := range traces {
		found = found || s.TraceID == jt.TraceID
	}
	if !found {
		return fmt.Errorf("job trace %s missing from /v1/traces (%d listed)", jt.TraceID, len(traces))
	}

	// The event timeline: JSON snapshot and the SSE replay must agree.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+jobID+"/events?stream=1", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("event stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("event stream: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return fmt.Errorf("event stream content type %q", ct)
	}
	sse, err := io.ReadAll(resp.Body) // terminal job: the server closes after the replay
	if err != nil {
		return fmt.Errorf("event stream read: %w", err)
	}
	if !bytes.Contains(sse, []byte(`"state":"done"`)) {
		return fmt.Errorf("SSE replay of job %s carries no terminal state event", jobID)
	}
	return nil
}
