// Command rsmload is the cluster load generator: it drives a mixed
// predict/fit/yield/refine workload against an rsmd shard ring and reports
// throughput, latency percentiles and failure accounting as JSON
// (BENCH_10.json in CI).
//
// With -spawn N it builds the cluster itself: N separate rsmd shard
// processes (re-execs of this binary in a hidden node mode) on local
// ports, each with its own store and job journal, plus a single-node
// baseline run so the cluster-vs-single throughput ratio lands in the
// report. With -targets it load-tests an already-running ring instead.
//
// Phases:
//
//	single   closed-loop predict throughput against one plain node
//	cluster  the same closed-loop mixed workload against the ring
//	open     fixed-arrival-rate (open-loop) latency against the ring
//	chaos    (-chaos) SIGKILL one shard mid-traffic: goodput must come
//	         only out of the dead shard's models, and every accepted job
//	         must finish after the shard restarts and replays its journal
//
// The chaos phase is also a check: requests failing for models owned by
// live shards, or accepted jobs that never reach a terminal state, exit
// non-zero — `make cluster-smoke` runs exactly that.
//
//	rsmload -spawn 3 -duration 5s -conc 8 -chaos -out BENCH_10.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/rsm"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-node" {
		if err := runNode(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "rsmload node:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rsmload:", err)
		os.Exit(1)
	}
}

// runNode is the hidden shard mode: one rsmd serving process wired for
// cluster duty, dying on SIGTERM. The parent re-execs this binary so the
// ring is made of real OS processes, not goroutines sharing a scheduler.
func runNode(args []string) error {
	fs := flag.NewFlagSet("rsmload -node", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "", "listen address")
		selfURL = fs.String("self", "", "this node's URL in -peers (empty with -peers unset = standalone)")
		peers   = fs.String("peers", "", "comma-separated ring URLs")
		store   = fs.String("store", "", "model store directory")
		journal = fs.String("journal", "", "job journal directory")
		syncInt = fs.Duration("sync-interval", 250*time.Millisecond, "replication pull period")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, _ := obs.ParseLevel("warn")
	logger := obs.NewLogger(os.Stderr, level, "text")
	reg, err := registry.OpenWith(*store, logger)
	if err != nil {
		return err
	}
	var clu *cluster.Cluster
	if *peers != "" {
		clu, err = cluster.New(reg, cluster.Config{
			Self: *selfURL, Peers: splitURLs(*peers), SyncInterval: *syncInt, Logger: logger,
		})
		if err != nil {
			return err
		}
	}
	srv, err := server.New(reg, server.Config{
		FitWorkers: 2, JournalDir: *journal, Cluster: clu, Logger: logger,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	hs.Close()
	srv.Close()
	return nil
}

func splitURLs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// shard is one spawned ring member: its identity survives kill/restart so
// the journal-replay contract can be exercised on the same store.
type shard struct {
	addr, url      string
	store, journal string
	cmd            *exec.Cmd
}

// opMix maps operation name to probability weight.
type opMix map[string]float64

func parseMix(s string) (opMix, error) {
	mix := opMix{}
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mix term %q: want op=weight", part)
		}
		var w float64
		if _, err := fmt.Sscanf(v, "%g", &w); err != nil || w < 0 {
			return nil, fmt.Errorf("mix weight %q", v)
		}
		switch k {
		case "predict", "fit", "yield", "refine":
		default:
			return nil, fmt.Errorf("unknown op %q (want predict|fit|yield|refine)", k)
		}
		mix[k] = w
		total += w
	}
	if total <= 0 {
		return nil, errors.New("mix has zero total weight")
	}
	for k := range mix {
		mix[k] /= total
	}
	return mix, nil
}

// phaseReport is one measured load phase in the output JSON.
type phaseReport struct {
	Name          string         `json:"name"`
	Nodes         int            `json:"nodes"`
	Mode          string         `json:"mode"` // closed | open
	DurationS     float64        `json:"duration_s"`
	Requests      int            `json:"requests"`
	Errors        int            `json:"errors"`
	Rejects       int            `json:"rejects"` // definitive 4xx (e.g. refine races): workload semantics, not failures
	ThroughputRPS float64        `json:"throughput_rps"`
	P50Ms         float64        `json:"p50_ms"`
	P95Ms         float64        `json:"p95_ms"`
	P99Ms         float64        `json:"p99_ms"`
	Ops           map[string]int `json:"ops"`
	OpErrors      map[string]int `json:"op_errors,omitempty"`
	OpRejects     map[string]int `json:"op_rejects,omitempty"`
}

// chaosReport pins the one-shard-kill contract in the output JSON.
type chaosReport struct {
	KilledShard         string  `json:"killed_shard"`
	WindowS             float64 `json:"window_s"`
	GoodputRPS          float64 `json:"goodput_rps"`
	DeadShardErrors     int     `json:"dead_shard_errors"`
	NonOwnedShardErrors int     `json:"non_owned_shard_errors"`
	JobsSubmitted       int     `json:"jobs_submitted"`
	JobsLost            int     `json:"jobs_lost"`
	CanaryJob           string  `json:"canary_job"`
	CanaryState         string  `json:"canary_state"`
}

type report struct {
	Bench                string        `json:"bench"`
	CPUs                 int           `json:"cpus"`
	Note                 string        `json:"note,omitempty"`
	Nodes                int           `json:"nodes"`
	Mix                  opMix         `json:"mix"`
	Phases               []phaseReport `json:"phases"`
	ClusterVsSingleRatio float64       `json:"cluster_vs_single_predict_ratio,omitempty"`
	Chaos                *chaosReport  `json:"chaos,omitempty"`
}

// loadStats accumulates one phase's measurements across workers.
type loadStats struct {
	mu        sync.Mutex
	latMs     []float64
	ops       map[string]int
	opErrs    map[string]int
	opRejects map[string]int
	deadErrs  int // failed ops on models the dead shard owns (expected)
	otherErrs int // failed ops on live-shard models (a bug)
	jobs      []string
}

func newLoadStats() *loadStats {
	return &loadStats{ops: map[string]int{}, opErrs: map[string]int{}, opRejects: map[string]int{}}
}

func (st *loadStats) record(op string, d time.Duration, err error, deadOwned bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.ops[op]++
	if err != nil {
		// A definitive 4xx is the workload racing itself (e.g. two refines
		// of the same model), not the ring failing — keep it out of the
		// error budget but visible in the report.
		if code := rsm.StatusCode(err); code >= 400 && code < 500 {
			st.opRejects[op]++
			return
		}
		st.opErrs[op]++
		if deadOwned {
			st.deadErrs++
		} else {
			st.otherErrs++
		}
		return
	}
	st.latMs = append(st.latMs, float64(d)/float64(time.Millisecond))
}

func (st *loadStats) addJob(id string) {
	st.mu.Lock()
	st.jobs = append(st.jobs, id)
	st.mu.Unlock()
}

func (st *loadStats) phase(name, mode string, nodes int, window time.Duration) phaseReport {
	st.mu.Lock()
	defer st.mu.Unlock()
	total, errs, rejects := 0, 0, 0
	for _, n := range st.ops {
		total += n
	}
	for _, n := range st.opErrs {
		errs += n
	}
	for _, n := range st.opRejects {
		rejects += n
	}
	sort.Float64s(st.latMs)
	return phaseReport{
		Name: name, Nodes: nodes, Mode: mode,
		DurationS: window.Seconds(),
		Requests:  total, Errors: errs, Rejects: rejects,
		ThroughputRPS: float64(len(st.latMs)) / window.Seconds(),
		P50Ms:         percentile(st.latMs, 0.50),
		P95Ms:         percentile(st.latMs, 0.95),
		P99Ms:         percentile(st.latMs, 0.99),
		Ops:           st.ops, OpErrors: st.opErrs, OpRejects: st.opRejects,
	}
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// loader holds everything a worker needs to issue one operation.
type loader struct {
	targets []string
	clients []*rsm.Client
	mix     opMix
	order   []string // mix keys in fixed pick order
	cum     []float64
	models  []string // uploaded predict/yield targets
	fitted  []string // server-fitted models with checkpoints (refine targets)
	dim     int
	fitSeq  func() int
	jobCap  int              // max jobs submitted per phase, so the generator can't saturate the fit queue into shedding
	oracle  *cluster.Cluster // ownership lookups; nil outside cluster runs
	deadURL func() string    // URL of the currently-dead shard ("" = none)
}

// client picks the worker's target, skipping a dead shard the way a load
// balancer rotates out an unhealthy backend: the chaos contract is about
// requests routed *through live nodes*, not about connecting to a corpse.
func (l *loader) client(worker int) (*rsm.Client, string) {
	dead := l.deadURL()
	n := len(l.clients)
	for i := 0; i < n; i++ {
		if idx := (worker + i) % n; l.targets[idx] != dead {
			return l.clients[idx], l.targets[idx]
		}
	}
	return l.clients[worker%n], l.targets[worker%n]
}

func newLoader(targets []string, mix opMix, models, fitted []string, dim int, oracle *cluster.Cluster) *loader {
	l := &loader{
		targets: targets, mix: mix, models: models, fitted: fitted, dim: dim,
		oracle: oracle, deadURL: func() string { return "" },
	}
	for _, t := range targets {
		c := rsm.NewClient(t)
		c.Retry = rsm.RetryPolicy{MaxAttempts: 1} // measure the ring, not the client's persistence
		l.clients = append(l.clients, c)
	}
	for _, op := range []string{"predict", "fit", "yield", "refine"} {
		if w := mix[op]; w > 0 {
			l.order = append(l.order, op)
			prev := 0.0
			if len(l.cum) > 0 {
				prev = l.cum[len(l.cum)-1]
			}
			l.cum = append(l.cum, prev+w)
		}
	}
	var seq int64
	var mu sync.Mutex
	l.fitSeq = func() int {
		mu.Lock()
		defer mu.Unlock()
		seq++
		return int(seq)
	}
	return l
}

func (l *loader) pick(r *rand.Rand) string {
	x := r.Float64() * l.cum[len(l.cum)-1]
	for i, c := range l.cum {
		if x <= c {
			return l.order[i]
		}
	}
	return l.order[len(l.order)-1]
}

func (l *loader) point(r *rand.Rand) []float64 {
	p := make([]float64, l.dim)
	for i := range p {
		p[i] = 2*r.Float64() - 1
	}
	return p
}

// ownedByDead reports whether the model currently routes to a dead shard,
// so its failures count as expected unavailability, not as collateral.
func (l *loader) ownedByDead(name string) bool {
	dead := l.deadURL()
	if dead == "" || l.oracle == nil {
		return false
	}
	_, url, _ := l.oracle.Owner(name)
	return url == dead
}

// doOp issues one operation of the mix and records it.
func (l *loader) doOp(ctx context.Context, r *rand.Rand, worker int, st *loadStats) {
	op := l.pick(r)
	if op == "fit" || op == "refine" {
		st.mu.Lock()
		full := len(st.jobs) >= l.jobCap
		st.mu.Unlock()
		if full {
			op = "predict" // job budget spent; keep the serving pressure up instead
		}
	}
	cl, target := l.client(worker)
	var name string
	start := time.Now()
	var err error
	switch op {
	case "predict":
		name = l.models[r.Intn(len(l.models))]
		_, err = cl.Predict(ctx, name, [][]float64{l.point(r)})
	case "yield":
		name = l.models[r.Intn(len(l.models))]
		lo := -1.0
		_, err = cl.Yield(ctx, name, rsm.YieldRequest{Low: &lo, N: 2000, Seed: int64(worker + 1)})
	case "fit":
		name = fmt.Sprintf("load-fit-%d", l.fitSeq())
		pts := make([][]float64, 8)
		vals := make([]float64, len(pts))
		for i := range pts {
			pts[i] = l.point(r)
			vals[i] = 1 + 2*pts[i][0] - pts[i][1]
		}
		var id string
		id, err = cl.SubmitFit(ctx, rsm.FitRequest{
			Name: name, Points: pts, Values: vals, Folds: 2, MaxLambda: 3,
		})
		if err == nil {
			st.addJob(id)
		}
	case "refine":
		name = l.fitted[r.Intn(len(l.fitted))]
		pts := make([][]float64, 12)
		vals := make([]float64, len(pts))
		for i := range pts {
			pts[i] = l.point(r)
			vals[i] = 1 + 2*pts[i][0] - pts[i][1]
		}
		var id string
		id, err = cl.Refine(ctx, name, rsm.RefineRequest{Points: pts, Values: vals})
		if err == nil {
			st.addJob(id)
		}
	}
	if ctx.Err() != nil && err != nil {
		return // the window closed mid-call; don't count a truncated op
	}
	// Failures are excused when the model is owned by the dead shard OR the
	// request was already in flight to the node that just got killed — the
	// kill races requests the balancer had dispatched before it noticed.
	st.record(op, time.Since(start), err, l.ownedByDead(name) || target == l.deadURL())
}

// runClosed drives conc workers, each issuing the next operation as soon as
// the previous one returns, for the window.
func (l *loader) runClosed(parent context.Context, conc int, window time.Duration, seed int64, st *loadStats) {
	ctx, cancel := context.WithTimeout(parent, window)
	defer cancel()
	l.jobCap = 25 * int(window/time.Second+1)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + int64(w)))
			for ctx.Err() == nil {
				l.doOp(ctx, r, w, st)
			}
		}(w)
	}
	wg.Wait()
}

// runOpen issues operations at a fixed arrival rate regardless of response
// times (open loop), so queueing delay shows up in the percentiles instead
// of throttling the generator. Arrivals beyond the in-flight cap are
// dropped and counted.
func (l *loader) runOpen(parent context.Context, rate int, conc int, window time.Duration, seed int64, st *loadStats) {
	ctx, cancel := context.WithTimeout(parent, window)
	defer cancel()
	l.jobCap = 25 * int(window/time.Second+1)
	tick := time.NewTicker(time.Second / time.Duration(rate))
	defer tick.Stop()
	sem := make(chan struct{}, conc*8)
	var wg sync.WaitGroup
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-tick.C:
		}
		select {
		case sem <- struct{}{}:
		default:
			st.mu.Lock()
			st.ops["dropped"]++
			st.opErrs["dropped"]++
			st.otherErrs++ // the generator overran itself; visible, not hidden
			st.mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			defer func() { <-sem }()
			wr := rand.New(rand.NewSource(seed))
			l.doOp(ctx, wr, i, st)
		}(i, seed+int64(i)+1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rsmload", flag.ContinueOnError)
	var (
		targets  = fs.String("targets", "", "comma-separated URLs of an existing ring to load (empty = -spawn a local one)")
		spawn    = fs.Int("spawn", 3, "shard processes to spawn when -targets is empty")
		duration = fs.Duration("duration", 5*time.Second, "measurement window per phase")
		conc     = fs.Int("conc", 8, "closed-loop worker count")
		rate     = fs.Int("rate", 40, "open-loop arrivals per second (0 skips the open phase)")
		models   = fs.Int("models", 12, "predict/yield models preloaded across the ring")
		dim      = fs.Int("dim", 4, "model dimensionality")
		mixSpec  = fs.String("mix", "predict=0.90,fit=0.03,yield=0.04,refine=0.03", "operation mix weights")
		chaos    = fs.Bool("chaos", false, "run the one-shard-kill phase (needs a spawned ring of >= 2)")
		baseline = fs.Bool("baseline", true, "also measure a single plain node for the cluster-vs-single ratio (spawned runs only)")
		seed     = fs.Int64("seed", 1, "workload RNG seed")
		out      = fs.String("out", "-", "report path (- = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return fmt.Errorf("-mix: %w", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep := &report{Bench: "rsmload", CPUs: runtime.NumCPU(), Mix: mix}
	if rep.CPUs == 1 {
		rep.Note = "single-CPU host: all shard processes share one core, so the cluster ratio " +
			"measures coordination overhead, not horizontal capacity; expect >= #shards ratio only on multi-core hosts"
	}

	var urls []string
	var shards []*shard
	spawned := false
	if *targets != "" {
		urls = splitURLs(*targets)
	} else {
		if *spawn < 1 {
			return errors.New("-spawn must be >= 1 when -targets is empty")
		}
		spawned = true
		work, err := os.MkdirTemp("", "rsmload-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(work)

		// The single-node baseline first, on its own throwaway store.
		if *baseline {
			single := &shard{store: filepath.Join(work, "single", "models"), journal: filepath.Join(work, "single", "journal")}
			if err := allocAddr(single); err != nil {
				return err
			}
			if err := startShard(single, nil); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "rsmload: single-node baseline on %s (%s window)\n", single.url, *duration)
			st := newLoadStats()
			base, err := preload(ctx, []string{single.url}, *models, *dim, mix)
			if err != nil {
				stopShard(single)
				return fmt.Errorf("single-node preload: %w", err)
			}
			l := newLoader([]string{single.url}, mix, base.models, base.fitted, *dim, nil)
			l.runClosed(ctx, *conc, *duration, *seed, st)
			lost, submitted := drainJobs(ctx, single.url, st, 60*time.Second)
			stopShard(single)
			ph := st.phase("single", "closed", 1, *duration)
			rep.Phases = append(rep.Phases, ph)
			if lost > 0 {
				return fmt.Errorf("single-node run lost %d of %d jobs", lost, submitted)
			}
		}

		for i := 0; i < *spawn; i++ {
			s := &shard{
				store:   filepath.Join(work, fmt.Sprintf("s%d", i), "models"),
				journal: filepath.Join(work, fmt.Sprintf("s%d", i), "journal"),
			}
			if err := allocAddr(s); err != nil {
				return err
			}
			shards = append(shards, s)
			urls = append(urls, s.url)
		}
		for _, s := range shards {
			if err := startShard(s, urls); err != nil {
				return err
			}
		}
		defer func() {
			for _, s := range shards {
				stopShard(s)
			}
		}()
	}
	rep.Nodes = len(urls)

	// Ownership oracle: a proxy-only ring view, never started, used to
	// classify chaos-window failures by owning shard.
	quiet, _ := obs.ParseLevel("error")
	oracle, err := cluster.New(registry.New(), cluster.Config{
		Peers: urls, SyncInterval: -1, Logger: obs.NewLogger(os.Stderr, quiet, "text"),
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "rsmload: preloading %d models across %d node(s)\n", *models, len(urls))
	pre, err := preload(ctx, urls, *models, *dim, mix)
	if err != nil {
		return fmt.Errorf("preload: %w", err)
	}
	l := newLoader(urls, mix, pre.models, pre.fitted, *dim, oracle)

	// Closed-loop cluster phase.
	fmt.Fprintf(os.Stderr, "rsmload: closed loop, %d workers, %s window\n", *conc, *duration)
	st := newLoadStats()
	l.runClosed(ctx, *conc, *duration, *seed+1000, st)
	lost, submitted := drainJobs(ctx, urls[0], st, 60*time.Second)
	ph := st.phase("cluster", "closed", len(urls), *duration)
	rep.Phases = append(rep.Phases, ph)
	if lost > 0 {
		return fmt.Errorf("cluster run lost %d of %d jobs", lost, submitted)
	}
	if ph.Errors > 0 {
		return fmt.Errorf("cluster run saw %d errors with all shards up", ph.Errors)
	}
	for _, p := range rep.Phases {
		if p.Name == "single" && p.ThroughputRPS > 0 {
			rep.ClusterVsSingleRatio = round3(ph.ThroughputRPS / p.ThroughputRPS)
		}
	}

	// Open-loop phase: fixed arrivals, latency includes queueing.
	if *rate > 0 {
		fmt.Fprintf(os.Stderr, "rsmload: open loop, %d req/s, %s window\n", *rate, *duration)
		st = newLoadStats()
		l.runOpen(ctx, *rate, *conc, *duration, *seed+2000, st)
		lost, submitted = drainJobs(ctx, urls[0], st, 60*time.Second)
		rep.Phases = append(rep.Phases, st.phase("open", "open", len(urls), *duration))
		if lost > 0 {
			return fmt.Errorf("open-loop run lost %d of %d jobs", lost, submitted)
		}
	}

	if *chaos {
		if !spawned || len(shards) < 2 {
			return errors.New("-chaos needs a spawned ring of at least 2 shards")
		}
		cr, err := runChaos(ctx, l, shards, urls, oracle, *conc, *duration, *seed+3000)
		if err != nil {
			return err
		}
		rep.Chaos = cr
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rsmload: report written to %s\n", *out)
	return nil
}

func round3(x float64) float64 { return float64(int(x*1000+0.5)) / 1000 }

// runChaos kills the last shard one fifth into a traffic window and holds
// the load: the contract is that only that shard's models fail, and that
// every accepted job — including a canary fit owned by the victim — reaches
// a terminal state once the shard restarts and replays its journal.
func runChaos(ctx context.Context, l *loader, shards []*shard, urls []string, oracle *cluster.Cluster, conc int, window time.Duration, seed int64) (*chaosReport, error) {
	victim := shards[len(shards)-1]
	fmt.Fprintf(os.Stderr, "rsmload: chaos phase, killing %s mid-window\n", victim.url)

	canaryName := ""
	for i := 0; i < 10000 && canaryName == ""; i++ {
		n := fmt.Sprintf("chaos-canary-%d", i)
		if _, u, _ := oracle.Owner(n); u == victim.url {
			canaryName = n
		}
	}
	// The canary is a deliberately heavy fit (quadratic dictionary, CV
	// sweep) so it is still mid-run when the shard dies: its completion
	// after restart is the journal-replay proof.
	c0 := rsm.NewClient(urls[0])
	r := rand.New(rand.NewSource(seed))
	const canaryDim = 16
	pts := make([][]float64, 500)
	vals := make([]float64, len(pts))
	for i := range pts {
		pts[i] = make([]float64, canaryDim)
		for j := range pts[i] {
			pts[i][j] = 2*r.Float64() - 1
		}
		vals[i] = 1 + 2*pts[i][0] - 3*pts[i][2] + pts[i][1]*pts[i][4] + 0.01*r.NormFloat64()
	}
	canaryID, err := c0.SubmitFit(ctx, rsm.FitRequest{
		Name: canaryName, Points: pts, Values: vals, Degree: 2, Folds: 4, MaxLambda: 30,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos canary submit: %w", err)
	}
	for deadline := time.Now().Add(15 * time.Second); ; {
		jst, err := c0.Job(ctx, canaryID)
		if err != nil {
			return nil, fmt.Errorf("chaos canary poll: %w", err)
		}
		if jst.State == rsm.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("chaos canary never started running (state %s)", jst.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	st := newLoadStats()
	st.addJob(canaryID)
	var deadMu sync.Mutex
	dead := ""
	l.deadURL = func() string {
		deadMu.Lock()
		defer deadMu.Unlock()
		return dead
	}
	defer func() { l.deadURL = func() string { return "" } }()

	killTimer := time.AfterFunc(300*time.Millisecond, func() {
		deadMu.Lock()
		dead = victim.url
		deadMu.Unlock()
		victim.cmd.Process.Kill() //nolint:errcheck // SIGKILL a child we own
	})
	defer killTimer.Stop()
	l.runClosed(ctx, conc, window, seed, st)

	// Restart the victim on the same port, store and journal.
	victim.cmd.Wait() //nolint:errcheck // reap the SIGKILLed child
	if err := startShard(victim, urls); err != nil {
		return nil, fmt.Errorf("chaos restart: %w", err)
	}
	deadMu.Lock()
	dead = ""
	deadMu.Unlock()

	lost, submitted := drainJobs(ctx, urls[0], st, 120*time.Second)
	canary, err := c0.WaitJob(ctx, canaryID, 50*time.Millisecond)
	canaryState := "unknown"
	if err == nil {
		canaryState = string(canary.State)
	}
	ph := st.phase("chaos", "closed", len(urls), window)
	cr := &chaosReport{
		KilledShard: victim.url, WindowS: window.Seconds(),
		GoodputRPS:      round3(ph.ThroughputRPS),
		DeadShardErrors: st.deadErrs, NonOwnedShardErrors: st.otherErrs,
		JobsSubmitted: submitted, JobsLost: lost,
		CanaryJob: canaryID, CanaryState: canaryState,
	}
	if st.otherErrs > 0 {
		return cr, fmt.Errorf("chaos: %d errors on models owned by live shards", st.otherErrs)
	}
	if lost > 0 {
		return cr, fmt.Errorf("chaos: %d of %d accepted jobs never reached a terminal state", lost, submitted)
	}
	if canaryState != "done" {
		return cr, fmt.Errorf("chaos: canary fit %s ended %s, want done after journal replay", canaryID, canaryState)
	}
	return cr, nil
}

// preloadSet is the fixed model population the load phases run against.
type preloadSet struct {
	models []string // uploaded: predict/yield targets
	fitted []string // fitted through the API: refine targets with checkpoints
}

// preload uploads the predict/yield models and fits the refine targets
// through the ring, so every phase starts from the same served state.
func preload(ctx context.Context, urls []string, models, dim int, mix opMix) (*preloadSet, error) {
	c := rsm.NewClient(urls[0])
	b := rsm.LinearBasis(dim)
	env := &rsm.Envelope{
		Model: &rsm.Model{M: b.Size(), Support: []int{1, 2}, Coef: []float64{2, -3}},
		Basis: b.Desc,
		Prov:  rsm.Provenance{Solver: "OMP", Lambda: 2, Metric: "f"},
	}
	set := &preloadSet{}
	for i := 0; i < models; i++ {
		name := fmt.Sprintf("load-model-%d", i)
		if _, err := c.UploadModel(ctx, name, env); err != nil {
			return nil, fmt.Errorf("upload %s: %w", name, err)
		}
		set.models = append(set.models, name)
	}
	if mix["refine"] <= 0 {
		return set, nil
	}
	r := rand.New(rand.NewSource(99))
	nFit := models/4 + 2
	ids := make([]string, 0, nFit)
	for i := 0; i < nFit; i++ {
		name := fmt.Sprintf("load-fitted-%d", i)
		pts := make([][]float64, 10)
		vals := make([]float64, len(pts))
		for j := range pts {
			pts[j] = make([]float64, dim)
			for k := range pts[j] {
				pts[j][k] = 2*r.Float64() - 1
			}
			vals[j] = 1 + 2*pts[j][0] - pts[j][1]
		}
		id, err := c.SubmitFit(ctx, rsm.FitRequest{
			Name: name, Points: pts, Values: vals, Folds: 2, MaxLambda: 3,
		})
		if err != nil {
			return nil, fmt.Errorf("preload fit %s: %w", name, err)
		}
		ids = append(ids, id)
		set.fitted = append(set.fitted, name)
	}
	for i, id := range ids {
		st, err := c.WaitJob(ctx, id, 20*time.Millisecond)
		if err != nil {
			return nil, fmt.Errorf("preload fit %s: %w", set.fitted[i], err)
		}
		if st.State != rsm.JobDone {
			return nil, fmt.Errorf("preload fit %s ended %s: %s", set.fitted[i], st.State, st.Error)
		}
	}
	return set, nil
}

// drainJobs waits every job the phase submitted to a terminal state and
// returns how many never got there — the "lost jobs" count that must be
// zero for the run to pass. Jobs that terminate unsuccessfully (a refine
// the publish gate rejected, say) are accounted for, not lost: lost means
// the ring can no longer say what happened to an accepted job.
func drainJobs(ctx context.Context, target string, st *loadStats, budget time.Duration) (lost, submitted int) {
	st.mu.Lock()
	jobs := append([]string(nil), st.jobs...)
	st.mu.Unlock()
	if len(jobs) == 0 {
		return 0, 0
	}
	c := rsm.NewClient(target)
	dctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	for _, id := range jobs {
		jst, err := c.WaitJob(dctx, id, 50*time.Millisecond)
		if err == nil {
			continue
		}
		terminal := jst != nil &&
			(jst.State == rsm.JobDone || jst.State == rsm.JobFailed ||
				jst.State == rsm.JobCanceled || jst.State == rsm.JobTimedOut)
		if !terminal {
			lost++
		}
	}
	return lost, len(jobs)
}

// allocAddr reserves a listen address for a shard. The port is released
// before the child binds it; the race window is harmless for local runs.
func allocAddr(s *shard) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	s.addr = ln.Addr().String()
	s.url = "http://" + s.addr
	return ln.Close()
}

// startShard launches (or relaunches) a shard process and waits until its
// health endpoint answers. peers == nil starts a plain standalone node.
func startShard(s *shard, peers []string) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	args := []string{"-node", "-addr", s.addr, "-store", s.store, "-journal", s.journal}
	if peers != nil {
		args = append(args, "-self", s.url, "-peers", strings.Join(peers, ","))
	}
	cmd := exec.Command(self, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	s.cmd = cmd
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(s.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill() //nolint:errcheck
			return fmt.Errorf("shard %s never became healthy", s.url)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// stopShard terminates a shard process, escalating from SIGTERM to SIGKILL.
func stopShard(s *shard) {
	if s.cmd == nil || s.cmd.Process == nil {
		return
	}
	s.cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
	done := make(chan struct{})
	go func() { s.cmd.Wait(); close(done) }() //nolint:errcheck
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		s.cmd.Process.Kill() //nolint:errcheck
		<-done
	}
}
