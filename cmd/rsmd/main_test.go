package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/rsm"
)

// startDaemon runs the daemon body on a random port and returns its base
// URL, the cancel that triggers graceful shutdown, and the exit channel.
func startDaemon(t *testing.T, extraArgs ...string) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, args, io.Discard, func(a string) { addrCh <- a })
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited before becoming ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return "", cancel, done
}

// TestDaemonStartsAndStopsClean checks the no-load lifecycle: the daemon
// comes up healthy and a graceful shutdown with nothing in flight returns
// promptly and without error.
func TestDaemonStartsAndStopsClean(t *testing.T) {
	base, cancel, done := startDaemon(t)
	c := rsm.NewClient(base)
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("daemon not healthy: %v", err)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clean shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonGracefulShutdownCancelsStalledJob is the drain acceptance test:
// a fit job stalled by an injected 60s delay must not hold shutdown past the
// -drain-timeout budget — the drain cancels it and the daemon exits cleanly
// well inside the stall time.
func TestDaemonGracefulShutdownCancelsStalledJob(t *testing.T) {
	defer faultinject.Reset()
	base, cancel, done := startDaemon(t,
		"-fit-jobs", "1", "-drain-timeout", "2s", "-faults", "server.fit=delay:60s")
	defer cancel()
	ctx := context.Background()
	c := rsm.NewClient(base)

	id, err := c.SubmitFit(ctx, rsm.FitRequest{Name: "stall", Folds: 2, MaxLambda: 4,
		Points: [][]float64{{0.1, 0.2}, {0.3, -0.4}, {-0.5, 0.6}, {0.7, 0.8}},
		Values: []float64{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has picked the job up and is inside the stall.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == server.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %s)", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon hung in shutdown behind the stalled job")
	}
	// The stall is 60s and the drain budget 2s: finishing quickly proves
	// the in-flight job was canceled rather than waited out.
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("shutdown took %v, want well under the 60s stall", elapsed)
	}
}

// TestDaemonRejectsBadFaultSpec checks that a malformed -faults value is a
// startup error, not a silently unarmed harness.
func TestDaemonRejectsBadFaultSpec(t *testing.T) {
	defer faultinject.Reset()
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-faults", "no-equals-sign"},
		io.Discard, nil)
	if err == nil {
		t.Fatal("bad -faults spec should fail startup")
	}
}

// pickPort reserves a free TCP port and releases it for the daemon to bind.
// A race against another process is theoretically possible but harmless in
// practice for tests.
func pickPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDaemonPrometheusScrape drives a full fit through the daemon over HTTP
// and then scrapes /metrics the way Prometheus does (Accept: text/plain):
// the exposition must validate and reflect the completed job.
func TestDaemonPrometheusScrape(t *testing.T) {
	base, cancel, done := startDaemon(t, "-log-level", "error")
	defer func() { cancel(); <-done }()
	ctx := context.Background()
	c := rsm.NewClient(base)

	id, err := c.SubmitFit(ctx, rsm.FitRequest{Name: "scrape", Folds: 2, MaxLambda: 3,
		Points: [][]float64{{0.1, 0.2}, {0.3, -0.4}, {-0.5, 0.6}, {0.7, 0.8}, {0.2, -0.6}, {-0.3, 0.5}},
		Values: []float64{1, 2, 3, 4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitJob(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Events) == 0 {
		t.Fatal("completed fit job reports no telemetry events over the wire")
	}

	req, _ := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q, want Prometheus text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("daemon exposition invalid: %v", err)
	}
	if !strings.Contains(string(body), `rsmd_jobs_total{state="done"} 1`) {
		t.Fatalf("exposition missing completed-job counter:\n%.2000s", body)
	}
	if resp.Header.Get(obs.RequestIDHeader) == "" {
		t.Fatal("metrics response carries no X-Request-Id")
	}
}

// TestDaemonFitWorkersFlag: -fit-workers must thread through the job context
// to the solver engine (job telemetry reports the effective sweep worker
// count) and surface in both /metrics views.
func TestDaemonFitWorkersFlag(t *testing.T) {
	base, cancel, done := startDaemon(t, "-log-level", "error", "-fit-workers", "3")
	defer func() { cancel(); <-done }()
	ctx := context.Background()
	c := rsm.NewClient(base)

	id, err := c.SubmitFit(ctx, rsm.FitRequest{Name: "workers", Folds: 2, MaxLambda: 3,
		Points: [][]float64{{0.1, 0.2}, {0.3, -0.4}, {-0.5, 0.6}, {0.7, 0.8}, {0.2, -0.6}, {-0.3, 0.5}},
		Values: []float64{1, 2, 3, 4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitJob(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.JobDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	if len(st.Events) == 0 {
		t.Fatal("job reports no telemetry events")
	}
	for _, ev := range st.Events {
		if ev.ParallelWorkers != 3 {
			t.Fatalf("event reports parallel_workers=%d, want 3", ev.ParallelWorkers)
		}
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Fit struct {
			ParallelWorkers int `json:"parallel_workers"`
		} `json:"fit"`
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Fit.ParallelWorkers != 3 {
		t.Fatalf("metrics fit.parallel_workers = %d, want 3", snap.Fit.ParallelWorkers)
	}

	req, _ := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "rsmd_fit_parallel_workers 3") {
		t.Fatalf("exposition missing rsmd_fit_parallel_workers gauge:\n%.2000s", body)
	}
}

// TestDaemonPprofOptIn: without -pprof-addr nothing listens; with it, the
// pprof index answers on the side listener and never on the serving port.
func TestDaemonPprofOptIn(t *testing.T) {
	pprofAddr := pickPort(t)
	base, cancel, done := startDaemon(t, "-log-level", "error", "-pprof-addr", pprofAddr)
	defer func() { cancel(); <-done }()

	// The serving mux must not expose pprof.
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("serving port exposes /debug/pprof/")
	}

	// The side listener must.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get("http://" + pprofAddr + "/debug/pprof/")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pprof endpoint never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: HTTP %d, body %.200s", resp.StatusCode, body)
	}
}

// TestDaemonLogFlags: json logs must be JSON; bad -log-level and -log-format
// values must fail startup.
func TestDaemonLogFlags(t *testing.T) {
	var buf syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	ready := make(chan string, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-log-format", "json"}, &buf,
			func(a string) { ready <- a })
	}()
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never ready")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("non-JSON log line with -log-format json: %q", line)
		}
		if m["msg"] == nil || m["level"] == nil {
			t.Fatalf("JSON log line missing msg/level: %q", line)
		}
	}

	if err := run(context.Background(), []string{"-log-level", "loud"}, io.Discard, nil); err == nil {
		t.Fatal("bad -log-level should fail startup")
	}
	if err := run(context.Background(), []string{"-log-format", "xml"}, io.Discard, nil); err == nil {
		t.Fatal("bad -log-format should fail startup")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the daemon goroutine writes
// log lines while the test reads after shutdown.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
