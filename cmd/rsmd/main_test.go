package main

import (
	"context"
	"io"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/rsm"
)

// startDaemon runs the daemon body on a random port and returns its base
// URL, the cancel that triggers graceful shutdown, and the exit channel.
func startDaemon(t *testing.T, extraArgs ...string) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, args, io.Discard, func(a string) { addrCh <- a })
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited before becoming ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return "", cancel, done
}

// TestDaemonStartsAndStopsClean checks the no-load lifecycle: the daemon
// comes up healthy and a graceful shutdown with nothing in flight returns
// promptly and without error.
func TestDaemonStartsAndStopsClean(t *testing.T) {
	base, cancel, done := startDaemon(t)
	c := rsm.NewClient(base)
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("daemon not healthy: %v", err)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clean shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonGracefulShutdownCancelsStalledJob is the drain acceptance test:
// a fit job stalled by an injected 60s delay must not hold shutdown past the
// -drain-timeout budget — the drain cancels it and the daemon exits cleanly
// well inside the stall time.
func TestDaemonGracefulShutdownCancelsStalledJob(t *testing.T) {
	defer faultinject.Reset()
	base, cancel, done := startDaemon(t,
		"-fit-workers", "1", "-drain-timeout", "2s", "-faults", "server.fit=delay:60s")
	defer cancel()
	ctx := context.Background()
	c := rsm.NewClient(base)

	id, err := c.SubmitFit(ctx, rsm.FitRequest{Name: "stall", Folds: 2, MaxLambda: 4,
		Points: [][]float64{{0.1, 0.2}, {0.3, -0.4}, {-0.5, 0.6}, {0.7, 0.8}},
		Values: []float64{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has picked the job up and is inside the stall.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == server.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %s)", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon hung in shutdown behind the stalled job")
	}
	// The stall is 60s and the drain budget 2s: finishing quickly proves
	// the in-flight job was canceled rather than waited out.
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("shutdown took %v, want well under the 60s stall", elapsed)
	}
}

// TestDaemonRejectsBadFaultSpec checks that a malformed -faults value is a
// startup error, not a silently unarmed harness.
func TestDaemonRejectsBadFaultSpec(t *testing.T) {
	defer faultinject.Reset()
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-faults", "no-equals-sign"},
		io.Discard, nil)
	if err == nil {
		t.Fatal("bad -faults spec should fail startup")
	}
}
