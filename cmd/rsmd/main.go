// Command rsmd is the model-serving daemon: it holds a versioned registry
// of fitted sparse response-surface models and serves batched prediction,
// parametric-yield and asynchronous fitting over a JSON HTTP API. Models
// survive restarts when -store points at a directory.
//
// Example session:
//
//	rsmd -addr :8080 -store ./models &
//	mcgen -circuit synthetic -n 300 -seed 1 > train.csv
//	curl -s -X POST localhost:8080/v1/fit \
//	     -d "$(jq -n --rawfile csv train.csv '{name:"demo", solver:"omp", csv:$csv}')"
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s -X POST localhost:8080/v1/models/demo/predict -d '{"points":[[0.1,0,...]]}'
//	curl -s localhost:8080/metrics
//	curl -s -H 'Accept: text/plain' localhost:8080/metrics   # Prometheus exposition
//
// Observability: logs are structured (-log-format text|json, -log-level
// debug|info|warn|error) and every request/log line carries an
// X-Request-Id; -pprof-addr starts an opt-in net/http/pprof endpoint on a
// separate listener so profiling is never exposed on the serving port.
//
// On SIGINT/SIGTERM the daemon drains gracefully: /healthz flips to 503 so
// load balancers rotate it out, the listener stops accepting, and in-flight
// fit jobs get the -drain-timeout budget to finish before being canceled.
//
// Horizontal serving: -peers lists every shard's base URL and -self names
// this node in that list; model names shard across the ring by consistent
// hashing, any node proxies requests to the owning shard, and shards pull
// published versions from each other so replicas can serve pinned reads.
// A -proxy node joins the ring as a router that owns nothing:
//
//	rsmd -addr :8081 -self http://h1:8081 -peers http://h1:8081,http://h2:8082
//	rsmd -addr :8082 -self http://h2:8082 -peers http://h1:8081,http://h2:8082
//	rsmd -addr :8080 -proxy -peers http://h1:8081,http://h2:8082
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rsmd:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body: it parses args, opens the store, serves
// until ctx is canceled, then drains within the -drain-timeout budget.
// ready, when non-nil, is called with the bound listen address once the
// daemon is accepting connections (tests use it with -addr 127.0.0.1:0).
func run(ctx context.Context, args []string, logw io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("rsmd", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		store        = fs.String("store", "", "model persistence directory (empty = in-memory only)")
		fitJobs      = fs.Int("fit-jobs", 2, "async fit worker pool size (concurrent fit jobs)")
		fitWorkers   = fs.Int("fit-workers", 0, "solver engine correlation-sweep goroutines per fit (0 = GOMAXPROCS)")
		queueDepth   = fs.Int("queue", 16, "max pending fit jobs")
		predWorkers  = fs.Int("predict-workers", 0, "prediction fan-out per request (0 = GOMAXPROCS)")
		maxBatch     = fs.Int("max-batch", 100000, "max points per predict request")
		predCache    = fs.Int("predict-cache", 64, "compiled predictors kept in the serving LRU cache (0 disables caching)")
		batchWindow  = fs.Duration("batch-window", 0, "predict micro-batching window: concurrent requests for the same model version coalesce for up to this long (0 disables)")
		batchMax     = fs.Int("batch-max", 4096, "max points coalesced into one micro-batch flush")
		reqTimeout   = fs.Duration("request-timeout", 30*time.Second, "per-request handler deadline")
		fitTimeout   = fs.Duration("fit-timeout", 5*time.Minute, "per-job fit deadline")
		pipeTimeout  = fs.Duration("pipeline-timeout", 10*time.Minute, "end-to-end deadline per netlist-in, model-out pipeline job")
		simWorkers   = fs.Int("sim-workers", 0, "simulator goroutines per pipeline sampling stage (0 = GOMAXPROCS)")
		journalDir   = fs.String("journal-dir", "", "durable job-journal directory: fit/pipeline jobs survive crashes and are re-run on boot (empty = no journal)")
		recoveryMax  = fs.Int("recovery-max-attempts", 3, "quarantine a journaled job as failed after it crashed the daemon this many times")
		traceStore   = fs.Int("trace-store", 256, "completed traces kept in memory for /v1/traces (0 disables tracing)")
		traceSlow    = fs.Duration("trace-slow", time.Second, "slow-trace threshold: traces at or over it are always kept and their requests logged at warn")
		traceSample  = fs.Float64("trace-sample", 1.0, "keep probability for fast, successful HTTP traces (errors, slow traces and jobs are always kept; 0 keeps only those)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight work")
		logLevel     = fs.String("log-level", "info", "log verbosity: debug|info|warn|error (debug includes per-request access logs)")
		logFormat    = fs.String("log-format", "text", "log encoding: text|json")
		pprofAddr    = fs.String("pprof-addr", "", "listen address for net/http/pprof (empty = disabled)")
		faults       = fs.String("faults", os.Getenv("RSMD_FAULTS"),
			"fault-injection spec for chaos testing, e.g. server.fit=panic#1 (default $RSMD_FAULTS)")
		peers        = fs.String("peers", "", "comma-separated base URLs of every shard in the ring (enables cluster mode)")
		self         = fs.String("self", "", "this node's own base URL as it appears in -peers (required with -peers unless -proxy)")
		proxyOnly    = fs.Bool("proxy", false, "proxy-only node: route requests to the owning shards in -peers without owning any models")
		vnodes       = fs.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
		syncInterval = fs.Duration("sync-interval", 0, "replication pull period between shards (0 = default, negative disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	if *logFormat != "text" && *logFormat != "json" {
		return fmt.Errorf("-log-format: unknown format %q (want text|json)", *logFormat)
	}
	logger := obs.NewLogger(logw, level, *logFormat)
	if *faults != "" {
		if err := faultinject.Configure(*faults); err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		logger.Warn("fault injection armed", "spec", *faults)
	}

	reg, err := registry.OpenWith(*store, logger)
	if err != nil {
		return err
	}

	// Cluster mode: -peers lists every shard; -self names this node in that
	// list (or -proxy makes it a routing-only member that owns nothing).
	var clu *cluster.Cluster
	if *peers != "" || *self != "" || *proxyOnly {
		if *peers == "" {
			return errors.New("-self/-proxy require -peers")
		}
		if *proxyOnly && *self != "" {
			return errors.New("-proxy and -self are mutually exclusive")
		}
		if !*proxyOnly && *self == "" {
			return errors.New("-peers requires -self (or -proxy for a routing-only node)")
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		clu, err = cluster.New(reg, cluster.Config{
			Self:         *self,
			Peers:        peerList,
			VNodes:       *vnodes,
			SyncInterval: *syncInterval,
			Logger:       logger,
		})
		if err != nil {
			return fmt.Errorf("-peers: %w", err)
		}
		logger.Info("cluster mode", "self", clu.SelfName(), "shards", len(peerList), "proxy_only", *proxyOnly)
	}
	cacheSize := *predCache
	if cacheSize == 0 {
		cacheSize = -1 // flag 0 = disabled; Config 0 = default
	}
	traceCap := *traceStore
	if traceCap == 0 {
		traceCap = -1 // flag 0 = disabled; Config 0 = default
	}
	sampleRate := *traceSample
	if sampleRate == 0 {
		sampleRate = -1 // flag 0 = tail-only; Config 0 = default (keep all)
	}
	srv, err := server.New(reg, server.Config{
		FitWorkers:          *fitJobs,
		FitParallel:         *fitWorkers,
		QueueDepth:          *queueDepth,
		PredictWorkers:      *predWorkers,
		MaxBatch:            *maxBatch,
		PredictCacheSize:    cacheSize,
		BatchWindow:         *batchWindow,
		BatchMaxPoints:      *batchMax,
		RequestTimeout:      *reqTimeout,
		FitTimeout:          *fitTimeout,
		PipelineTimeout:     *pipeTimeout,
		SimWorkers:          *simWorkers,
		JournalDir:          *journalDir,
		RecoveryMaxAttempts: *recoveryMax,
		TraceStoreSize:      traceCap,
		TraceSlow:           *traceSlow,
		TraceSample:         sampleRate,
		Cluster:             clu,
		Logger:              logger,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}

	// Profiling is opt-in and on its own listener: the serving port never
	// exposes pprof, and the endpoint dies with the daemon.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("-pprof-addr: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Handler: pmux}
		go func() {
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server failed", "error", err)
			}
		}()
		logger.Info("pprof enabled", "addr", pln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Info("serving", "models", reg.Len(), "addr", ln.Addr().String(), "store", *store,
		"log_level", level.String(), "log_format", *logFormat)
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-serveErr:
		srv.Close()
		if pprofSrv != nil {
			pprofSrv.Close()
		}
		return err
	case <-ctx.Done():
	}

	// Drain: readiness first (new traffic routes elsewhere), then the
	// listener and in-flight requests, then the fit workers — all under one
	// shared budget. Jobs still running when it expires are canceled and
	// land in state canceled.
	logger.Info("shutting down")
	srv.BeginDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	httpErr := httpSrv.Shutdown(shutCtx)
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("drain budget exhausted; canceled remaining fit jobs", "error", err)
	}
	if pprofSrv != nil {
		pprofSrv.Close()
	}
	if httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed) {
		return httpErr
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
