// Command rsmd is the model-serving daemon: it holds a versioned registry
// of fitted sparse response-surface models and serves batched prediction,
// parametric-yield and asynchronous fitting over a JSON HTTP API. Models
// survive restarts when -store points at a directory.
//
// Example session:
//
//	rsmd -addr :8080 -store ./models &
//	mcgen -circuit synthetic -n 300 -seed 1 > train.csv
//	curl -s -X POST localhost:8080/v1/fit \
//	     -d "$(jq -n --rawfile csv train.csv '{name:"demo", solver:"omp", csv:$csv}')"
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s -X POST localhost:8080/v1/models/demo/predict -d '{"points":[[0.1,0,...]]}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/registry"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rsmd: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		store       = flag.String("store", "", "model persistence directory (empty = in-memory only)")
		fitWorkers  = flag.Int("fit-workers", 2, "async fit worker pool size")
		queueDepth  = flag.Int("queue", 16, "max pending fit jobs")
		predWorkers = flag.Int("predict-workers", 0, "prediction fan-out per request (0 = GOMAXPROCS)")
		maxBatch    = flag.Int("max-batch", 100000, "max points per predict request")
	)
	flag.Parse()

	reg, err := registry.Open(*store)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(reg, server.Config{
		FitWorkers:     *fitWorkers,
		QueueDepth:     *queueDepth,
		PredictWorkers: *predWorkers,
		MaxBatch:       *maxBatch,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutCtx)
	}()

	log.Printf("serving %d model(s) on %s (store=%q)", reg.Len(), *addr, *store)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	srv.Close() // drain in-flight fit jobs
}
