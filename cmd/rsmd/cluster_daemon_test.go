package main

import (
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"repro/rsm"
)

// TestDaemonClusterFlagValidation: the cluster flags fail fast on
// inconsistent combinations instead of booting a mis-wired ring.
func TestDaemonClusterFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-self", "http://a:1"}, "-peers"},
		{[]string{"-proxy"}, "-peers"},
		{[]string{"-peers", "http://a:1,http://b:2"}, "-self"},
		{[]string{"-peers", "http://a:1", "-self", "http://a:1", "-proxy"}, "mutually exclusive"},
		{[]string{"-peers", "http://a:1,http://b:2", "-self", "http://c:3"}, "self"},
	}
	for _, tc := range cases {
		args := append([]string{"-addr", "127.0.0.1:0"}, tc.args...)
		err := run(context.Background(), args, io.Discard, nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
		}
	}
}

// TestDaemonClusterProxyServes boots two shard daemons plus a proxy-only
// daemon through the real flag surface and drives the client through the
// proxy: uploads route to the owning shard, predicts route back, and both
// shards answer for models they don't own.
func TestDaemonClusterProxyServes(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	addr1, addr2 := pickPort(t), pickPort(t)
	peers := "http://" + addr1 + ",http://" + addr2
	common := []string{"-log-level", "error", "-peers", peers, "-sync-interval", "100ms"}

	base1, cancel1, done1 := startDaemon(t, append(common, "-addr", addr1, "-self", "http://"+addr1)...)
	defer func() { cancel1(); <-done1 }()
	base2, cancel2, done2 := startDaemon(t, append(common, "-addr", addr2, "-self", "http://"+addr2)...)
	defer func() { cancel2(); <-done2 }()
	proxyBase, cancelP, doneP := startDaemon(t, append(common, "-proxy")...)
	defer func() { cancelP(); <-doneP }()

	c := rsm.NewClient(proxyBase)
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	b := rsm.LinearBasis(3)
	env := &rsm.Envelope{
		Model: &rsm.Model{M: b.Size(), Support: []int{1, 2}, Coef: []float64{2, -3}},
		Basis: b.Desc,
		Prov:  rsm.Provenance{Solver: "OMP", Lambda: 2, Metric: "f"},
	}
	for _, name := range []string{"cl-a", "cl-b", "cl-c", "cl-d"} {
		info, err := c.UploadModel(ctx, name, env)
		if err != nil {
			t.Fatalf("upload %s via proxy: %v", name, err)
		}
		if info.Version != 1 {
			t.Fatalf("upload %s: version %d, want 1", name, info.Version)
		}
		// Every node — proxy and both shards — serves every model.
		for _, base := range []string{proxyBase, base1, base2} {
			vals, err := rsm.NewClient(base).Predict(ctx, name, [][]float64{{1, 0, 0}})
			if err != nil {
				t.Fatalf("predict %s via %s: %v", name, base, err)
			}
			if len(vals) != 1 || vals[0] != 2 {
				t.Fatalf("predict %s via %s = %v, want [2]", name, base, vals)
			}
		}
	}
	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 0 {
		t.Fatalf("proxy-only node owns %d models, want 0", len(models))
	}
	if _, err := c.DeleteModel(ctx, "cl-a"); err != nil {
		t.Fatalf("delete via proxy: %v", err)
	}
	if _, err := c.Predict(ctx, "cl-a", [][]float64{{1, 0, 0}}); err == nil {
		t.Fatal("predict of deleted model succeeded")
	}
}
