// Command mcgen draws Monte Carlo sampling points from one of the built-in
// testbench circuits and writes the dataset as CSV (factors y0…yN-1 followed
// by the metric columns). It is the "run the transistor-level simulator"
// step of the paper's flow.
//
// Example:
//
//	mcgen -circuit opamp -n 600 -seed 1 > train.csv
//	mcgen -circuit sram -rows 8 -cols 4 -n 200 > sram.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/circuit"
	"repro/internal/mc"
)

func main() {
	log.SetFlags(0)
	var (
		which   = flag.String("circuit", "opamp", "testbench: opamp|spiceopamp|sram|ringosc|synthetic")
		n       = flag.Int("n", 100, "number of sampling points")
		seed    = flag.Int64("seed", 1, "random seed")
		stages  = flag.Int("stages", 5, "ring oscillator stages (odd)")
		rows    = flag.Int("rows", 25, "SRAM array rows")
		cols    = flag.Int("cols", 20, "SRAM array columns")
		dim     = flag.Int("dim", 50, "synthetic: number of variables")
		nnz     = flag.Int("nnz", 5, "synthetic: ground-truth sparsity")
		deg     = flag.Int("degree", 2, "synthetic: ground-truth degree")
		noise   = flag.Float64("noise", 0.01, "synthetic: observation noise sigma")
		lhs     = flag.Bool("lhs", false, "use Latin hypercube sampling")
		qmc     = flag.Bool("qmc", false, "use randomized Halton quasi-Monte Carlo sampling")
		workers = flag.Int("workers", 0, "parallel simulator workers (0 = NumCPU)")
	)
	flag.Parse()

	var sim circuit.Simulator
	var err error
	switch *which {
	case "opamp":
		sim, err = circuit.NewOpAmp()
	case "spiceopamp":
		sim, err = circuit.NewSpiceOpAmp()
	case "ringosc":
		sim, err = circuit.NewRingOscillator(*stages)
	case "sram":
		sim, err = circuit.NewSRAM(circuit.SRAMConfig{Rows: *rows, Cols: *cols})
	case "synthetic":
		sim, err = circuit.NewSynthetic(*seed, *dim, *deg, *nnz, *noise)
	default:
		log.Fatalf("mcgen: unknown circuit %q", *which)
	}
	if err != nil {
		log.Fatalf("mcgen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "mcgen: %s with %d variables, sampling %d points\n", *which, sim.Dim(), *n)
	ds, err := mc.Sample(sim, *n, *seed, mc.Options{Workers: *workers, LatinHypercube: *lhs, Halton: *qmc})
	if err != nil {
		log.Fatalf("mcgen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "mcgen: simulation took %v\n", ds.SimTime)
	if err := ds.WriteCSV(os.Stdout); err != nil {
		log.Fatalf("mcgen: %v", err)
	}
}
