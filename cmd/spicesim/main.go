// Command spicesim runs a SPICE-style netlist deck through the built-in
// circuit simulator: DC operating point, backward-Euler transient and
// small-signal AC analyses.
//
// Example deck (see examples/netlists/ for more):
//
//	V1 in 0 PULSE(0 1 0 1n 1n 1 0)
//	R1 in out 1k
//	C1 out 0 1u
//	.tran 5u 5m
//	.print out
//	.end
//
// Usage:
//
//	spicesim circuit.cir
//	spicesim - < circuit.cir
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/spice"
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: spicesim <netlist file | ->")
	}
	r := os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			log.Fatalf("spicesim: %v", err)
		}
		defer f.Close()
		r = f
	}
	nl, err := spice.ParseNetlist(r)
	if err != nil {
		log.Fatalf("spicesim: %v", err)
	}
	if err := nl.Run(os.Stdout); err != nil {
		log.Fatalf("spicesim: %v", err)
	}
}
