// Command paperbench regenerates every table and figure of the paper's
// evaluation section (Section V):
//
//	fig4    linear OpAmp modeling error vs training samples (4 metrics)
//	table1  linear OpAmp modeling cost
//	table2  quadratic OpAmp modeling error
//	table3  quadratic OpAmp modeling cost
//	table4  SRAM read-path linear modeling error and cost
//	fig6    SRAM delay-model coefficient magnitudes (sparsity profile)
//
// The extension experiment table1spice repeats the Table I comparison with
// the transistor-level (spice-simulated) OpAmp, where per-sample simulation
// genuinely dominates total cost.
//
// The default scale keeps every paper comparison meaningful while running in
// minutes; -scale full uses the paper's problem sizes (hours of CPU). See
// EXPERIMENTS.md for the recorded results and the paper-vs-measured notes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/circuit"
	"repro/internal/exp"
)

// Paper per-sample Spectre simulation costs, derived from the paper's cost
// tables (Table I: 16140s/1200 samples; Table IV: 728250s/25000 samples).
// The projected-total rows re-price our samples at these costs so the
// paper's speedup ratios are directly comparable.
const (
	paperOpAmpPerSample = 13450 * time.Millisecond
	paperSRAMPerSample  = 29130 * time.Millisecond
)

func main() {
	log.SetFlags(0)
	var (
		which   = flag.String("exp", "all", "experiment: fig4|table1|table2|table3|table4|fig6|table1spice|scaling|degrees|all")
		scale   = flag.String("scale", "default", "problem scale: default|full")
		seed    = flag.Int64("seed", 1, "base random seed")
		verbose = flag.Bool("v", false, "progress logging")
	)
	flag.Parse()
	full := false
	switch *scale {
	case "default":
	case "full":
		full = true
	default:
		log.Fatalf("paperbench: unknown -scale %q", *scale)
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}
	run := func(name string) bool { return *which == "all" || *which == name }
	any := false
	if run("scaling") && *which != "all" {
		// Extension: empirical check of the Section IV-B claim that
		// K = O(P·log M) samples suffice for exact support recovery.
		any = true
		runScaling(*seed, logf)
	}
	if run("degrees") && *which != "all" {
		// Extension: model-degree ablation quantifying the "strong
		// nonlinearity" motivation.
		any = true
		runDegrees(*seed, logf)
	}
	if run("table1spice") && *which != "all" {
		// Extension beyond the paper: the Table I comparison with the
		// transistor-level OpAmp, where simulation genuinely dominates.
		any = true
		runSpiceCost(*seed, logf)
	}
	if run("fig4") {
		any = true
		runFig4(*seed, logf)
	}
	if run("table1") {
		any = true
		runTable1(*seed, logf)
	}
	if run("table2") || run("table3") {
		any = true
		runQuad(*seed, full, *which, logf)
	}
	if run("table4") || run("fig6") {
		any = true
		runSRAM(*seed, full, *which, logf)
	}
	if !any {
		log.Fatalf("paperbench: unknown -exp %q", *which)
	}
}

func runFig4(seed int64, logf func(string, ...any)) {
	cfg := exp.DefaultFig4Config()
	cfg.Seed = seed
	cfg.Logf = logf
	res, err := exp.RunFig4(cfg)
	if err != nil {
		log.Fatalf("paperbench fig4: %v", err)
	}
	fmt.Println("Fig. 4 — linear OpAmp modeling error vs. number of training samples")
	for _, metric := range res.Metrics {
		t := &exp.Table{
			Title:  fmt.Sprintf("Fig. 4 (%s)", metric),
			Header: []string{"solver", "K", "error"},
		}
		var series []exp.Series
		for _, sv := range []struct {
			name string
			mark byte
		}{{"LS", 'L'}, {"STAR", 'S'}, {"LAR", 'A'}, {"OMP", 'O'}} {
			for _, p := range res.Curves[metric][sv.name] {
				t.AddRow(sv.name, fmt.Sprintf("%d", p.K), fmt.Sprintf("%.2f%%", 100*p.Err))
			}
			series = append(series, exp.Series{Name: sv.name, Mark: sv.mark, Points: res.Curves[metric][sv.name]})
		}
		fmt.Println(t)
		fmt.Println(exp.AsciiPlot(fmt.Sprintf("Fig. 4 (%s) — error vs K", metric), series, 60, 12))
	}
}

func runScaling(seed int64, logf func(string, ...any)) {
	cfg := exp.DefaultScalingConfig()
	cfg.Seed = seed + 500
	cfg.Logf = logf
	pts, err := exp.RunScaling(cfg)
	if err != nil {
		log.Fatalf("paperbench scaling: %v", err)
	}
	t := &exp.Table{
		Title:  fmt.Sprintf("Sampling-cost scaling (P=%d non-zeros, %d%% recovery target)", cfg.P, int(100*cfg.Target)),
		Header: []string{"M", "min K", "recovery", "K/(P·lnM)"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%d", p.M), fmt.Sprintf("%d", p.MinK),
			fmt.Sprintf("%.0f%%", 100*p.Rate), fmt.Sprintf("%.2f", p.KOverPLogM))
	}
	fmt.Println(t)
	fmt.Println("K/(P·lnM) staying ≈ constant confirms the K = O(P·log M) trend of Section IV-B.")
	fmt.Println()
}

func runDegrees(seed int64, logf func(string, ...any)) {
	cfg := exp.DefaultDegreeSweepConfig()
	cfg.Seed = seed + 600
	cfg.Logf = logf
	res, err := exp.RunDegreeSweep(cfg)
	if err != nil {
		log.Fatalf("paperbench degrees: %v", err)
	}
	t := &exp.Table{
		Title:  "Model-degree ablation — held-out error by polynomial degree (OMP, CV λ)",
		Header: []string{"metric", "degree", "M", "error", "λ"},
	}
	for _, r := range res {
		t.AddRow(r.Metric, fmt.Sprintf("%d", r.Degree), fmt.Sprintf("%d", r.M),
			fmt.Sprintf("%.2f%%", 100*r.Err), fmt.Sprintf("%d", r.Lambda))
	}
	fmt.Println(t)
}

func runSpiceCost(seed int64, logf func(string, ...any)) {
	cfg := exp.DefaultSpiceCostConfig()
	cfg.Seed = seed + 400
	cfg.Logf = logf
	res, err := exp.RunSpiceCost(cfg)
	if err != nil {
		log.Fatalf("paperbench table1spice: %v", err)
	}
	title := fmt.Sprintf("Table I (transistor-level extension) — spice OpAmp, N=%d variables", res.Dim)
	fmt.Println(exp.CostTable(title, res.Rows))
	printSpeedup(res.Rows, 0)
}

func runTable1(seed int64, logf func(string, ...any)) {
	cfg := exp.DefaultTable1Config()
	cfg.Seed = seed + 100
	cfg.Logf = logf
	res, err := exp.RunTable1(cfg)
	if err != nil {
		log.Fatalf("paperbench table1: %v", err)
	}
	fmt.Println(exp.CostTableProjected("Table I — linear OpAmp modeling cost (error averaged over 4 metrics)", res.Rows, paperOpAmpPerSample))
	printSpeedup(res.Rows, paperOpAmpPerSample)
}

func runQuad(seed int64, full bool, which string, logf func(string, ...any)) {
	cfg := exp.DefaultQuadConfig()
	if full {
		cfg = exp.PaperQuadConfig()
	}
	cfg.Seed = seed + 200
	cfg.Logf = logf
	res, err := exp.RunQuad(cfg)
	if err != nil {
		log.Fatalf("paperbench table2/3: %v", err)
	}
	if which == "all" || which == "table2" {
		t := &exp.Table{
			Title:  fmt.Sprintf("Table II — quadratic OpAmp modeling error (M=%d coefficients)", res.M),
			Header: []string{"", "LS", "STAR", "LAR", "OMP"},
		}
		for _, metric := range []string{"gain", "bandwidth", "power", "offset"} {
			row := []string{strings.ToUpper(metric[:1]) + metric[1:]}
			for _, solver := range []string{"LS", "STAR", "LAR", "OMP"} {
				if e, ok := res.Err[metric][solver]; ok {
					row = append(row, fmt.Sprintf("%.2f%%", 100*e))
				} else {
					row = append(row, "-")
				}
			}
			t.AddRow(row...)
		}
		fmt.Println(t)
		fmt.Print("OMP selected bases: ")
		for _, metric := range []string{"gain", "bandwidth", "power", "offset"} {
			fmt.Printf("%s=%d ", metric, res.SelectedBases[metric])
		}
		fmt.Println()
		fmt.Println()
	}
	if which == "all" || which == "table3" {
		fmt.Println(exp.CostTableProjected("Table III — quadratic OpAmp modeling cost", res.Rows, paperOpAmpPerSample))
		printSpeedup(res.Rows, paperOpAmpPerSample)
	}
}

func runSRAM(seed int64, full bool, which string, logf func(string, ...any)) {
	cfg := exp.DefaultTable4Config()
	if full {
		cfg.Circuit = circuit.PaperSRAMConfig()
		cfg.LSK = 25000
		cfg.SparseK = 1000
		cfg.TestN = 1000
		// Paper scale would need ≈4 GB of stored sampling points; the
		// virtual mode regenerates them from the seed instead (LS — whose
		// dense factorization is infeasible at this size anyway — is
		// skipped and its paper-reported numbers stand in).
		cfg.Virtual = true
	}
	cfg.Seed = seed + 300
	cfg.Logf = logf
	res, err := exp.RunTable4(cfg)
	if err != nil {
		log.Fatalf("paperbench table4: %v", err)
	}
	// table4 and fig6 share the same run, so both sections print for either.
	{
		title := fmt.Sprintf("Table IV — SRAM read-path linear modeling (N=%d variables, M=%d)", res.Dim, res.M)
		fmt.Println(exp.CostTableProjected(title, res.Rows, paperSRAMPerSample))
		printSpeedup(res.Rows, paperSRAMPerSample)
	}
	{
		_ = which
		series := exp.Fig6Series(res.OMPModel)
		nnz := res.OMPModel.NNZ()
		fmt.Printf("Fig. 6 — SRAM delay model coefficient magnitudes (OMP)\n")
		fmt.Printf("%d of %d coefficients are non-zero\n", nnz, res.M)
		t := &exp.Table{Header: []string{"rank", "|coefficient|"}}
		for i := 0; i < nnz && i < 50; i++ {
			t.AddRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("%.3e", series[i]))
		}
		fmt.Println(t)
	}
}

func printSpeedup(rows []exp.CostRow, perSample time.Duration) {
	var ls, omp *exp.CostRow
	for i := range rows {
		switch rows[i].Solver {
		case "LS":
			ls = &rows[i]
		case "OMP":
			omp = &rows[i]
		}
	}
	if ls == nil || omp == nil || omp.Total() == 0 {
		return
	}
	fmt.Fprintf(os.Stdout, "OMP speedup over LS (measured total): %.1f×\n",
		float64(ls.Total())/float64(omp.Total()))
	if perSample > 0 {
		projLS := time.Duration(ls.K)*perSample + ls.FitCost
		projOMP := time.Duration(omp.K)*perSample + omp.FitCost
		fmt.Fprintf(os.Stdout, "OMP speedup over LS (projected at paper simulation cost): %.1f×\n",
			float64(projLS)/float64(projOMP))
	}
	fmt.Fprintln(os.Stdout)
}
