// OpAmp variability modeling (paper Section V-A): model the gain, bandwidth,
// power and offset of a two-stage operational amplifier over its
// 630-dimensional variation space with all four solvers, from far fewer
// samples than the LS baseline needs.
//
//	go run ./examples/opamp
package main

import (
	"fmt"
	"log"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/mc"
)

func main() {
	amp, err := circuit.NewOpAmp()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-stage OpAmp: %d independent variation factors\n", amp.Dim())

	dict := basis.Linear(amp.Dim())
	fmt.Printf("linear Hermite dictionary: M = %d\n", dict.Size())

	// 400 training samples — well below M, so LS cannot even run; the
	// sparse solvers exploit the sparsity of each metric's dependence.
	const kTrain, kTest = 400, 1500
	fmt.Printf("sampling %d training + %d testing points...\n\n", kTrain, kTest)
	train, err := mc.Sample(amp, kTrain, 1, mc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	test, err := mc.Sample(amp, kTest, 2, mc.Options{})
	if err != nil {
		log.Fatal(err)
	}

	table := &exp.Table{
		Title:  fmt.Sprintf("held-out modeling error (K=%d, M=%d)", kTrain, dict.Size()),
		Header: []string{"metric", "STAR", "LAR", "OMP", "OMP λ"},
	}
	for mi, metric := range amp.Metrics() {
		f := train.MetricColumn(mi)
		fTest := test.MetricColumn(mi)
		row := []string{metric}
		var ompLambda int
		for _, spec := range exp.SparseSolvers() {
			fit, err := exp.FitSparse(spec.Fitter, dict, train.Points, f, 4, 50)
			if err != nil {
				log.Fatalf("%s/%s: %v", metric, spec.Name, err)
			}
			e := exp.TestError(fit.Model, dict, test.Points, fTest)
			row = append(row, fmt.Sprintf("%.2f%%", 100*e))
			if spec.Name == "OMP" {
				ompLambda = fit.Lambda
			}
		}
		row = append(row, fmt.Sprintf("%d", ompLambda))
		table.AddRow(row...)
	}
	fmt.Println(table)

	// Show the physical insight the sparse model encodes: the offset model
	// is dominated by the input differential pair, exactly as circuit
	// intuition predicts.
	f, _ := train.Metric("offset")
	design := basis.NewLazyDesign(dict, train.Points)
	cv, err := core.CrossValidate(&core.OMP{}, design, f, 4, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top offset contributors (variation factors selected by OMP):")
	for i, idx := range cv.Model.Support {
		if i >= 6 {
			break
		}
		name := "constant"
		if idx > 0 {
			name = amp.Space().FactorName(idx - 1)
		}
		fmt.Printf("  %-28s % .4e\n", name, cv.Model.Coef[i])
	}
}
