// Yield estimation: the payoff the paper's introduction promises. Fit sparse
// models of the OpAmp's four metrics from a few hundred simulations, then
// replace the simulator with the models to estimate performance
// distributions and parametric yield from a million virtual samples in
// seconds.
//
//	go run ./examples/yield
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/mc"
	"repro/internal/rng"
	"repro/internal/yield"
)

func main() {
	amp, err := circuit.NewOpAmp()
	if err != nil {
		log.Fatal(err)
	}
	dict := basis.Linear(amp.Dim())

	const kTrain = 500
	fmt.Printf("simulating %d training samples of the OpAmp (%d variables)...\n", kTrain, amp.Dim())
	train, err := mc.Sample(amp, kTrain, 1, mc.Options{})
	if err != nil {
		log.Fatal(err)
	}

	design := basis.NewLazyDesign(dict, train.Points)
	models := make(map[string]*core.Model, 4)
	for mi, metric := range amp.Metrics() {
		cv, err := core.CrossValidate(&core.OMP{}, design, train.MetricColumn(mi), 4, 40)
		if err != nil {
			log.Fatalf("%s: %v", metric, err)
		}
		models[metric] = cv.Model
		// Closed-form moments straight from the orthonormal coefficients.
		fmt.Printf("  %-10s λ=%-3d mean=%.4g sigma=%.3g\n",
			metric, cv.BestLambda, yield.ModelMean(cv.Model, dict), yield.ModelStd(cv.Model, dict))
	}

	an, err := yield.NewAnalyzer(dict, models)
	if err != nil {
		log.Fatal(err)
	}

	// Specs: gain and bandwidth above their -10% points, power below +10%,
	// offset within ±5 mV.
	nominal := map[string]float64{}
	for mi, metric := range amp.Metrics() {
		nominal[metric] = yield.ModelMean(models[metric], dict)
		_ = mi
	}
	specs := map[string]yield.Spec{
		"gain":      {Low: 0.9 * nominal["gain"], High: math.Inf(1)},
		"bandwidth": {Low: 0.9 * nominal["bandwidth"], High: math.Inf(1)},
		"power":     {Low: 0, High: 1.1 * nominal["power"]},
		"offset":    {Low: -0.005, High: 0.005},
	}

	const virtual = 1_000_000
	fmt.Printf("\nestimating yield from %d virtual samples (no simulator calls)...\n", virtual)
	res, err := an.Yield(rng.New(2), virtual, specs)
	if err != nil {
		log.Fatal(err)
	}
	for metric, p := range res.Marginal {
		fmt.Printf("  %-10s pass rate %6.2f%%\n", metric, 100*p)
	}
	fmt.Printf("\nparametric yield (all specs): %.2f%%\n", 100*res.Yield)

	// Distribution tails of the offset — the mismatch-dominated metric.
	qs, err := an.Quantiles(rng.New(3), 200000, "offset", []float64{0.001, 0.5, 0.999})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offset quantiles: 0.1%%=%.3g mV  median=%.3g mV  99.9%%=%.3g mV\n\n",
		1e3*qs[0], 1e3*qs[1], 1e3*qs[2])

	samples := an.Sample(rng.New(4), 20000)["offset"]
	for i := range samples {
		samples[i] *= 1e3 // mV
	}
	fmt.Println(exp.AsciiHist("offset distribution (mV, 20k virtual samples)", samples, 15, 50))
}
