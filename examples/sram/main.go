// SRAM read-path delay modeling (paper Section V-B): simulate an SRAM read
// path at transistor level under process variation, fit a sparse linear
// delay model with OMP, and show the Fig. 6 sparsity profile — only a few
// dozen of the thousands of variation factors matter, and they are exactly
// the devices on the read path.
//
//	go run ./examples/sram
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/mc"
	"repro/internal/stats"
)

func main() {
	// A modest array keeps the example under a minute; scale Rows/Cols up
	// (paper: 138×77 → 21 310 factors) for the full-size experiment.
	cfg := circuit.SRAMConfig{Rows: 8, Cols: 6}
	sram, err := circuit.NewSRAM(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SRAM read path: %d×%d cells, %d variation factors\n",
		cfg.Rows, cfg.Cols, sram.Dim())

	const kTrain, kTest = 120, 120
	fmt.Printf("running %d+%d transistor-level transient simulations...\n", kTrain, kTest)
	train, err := mc.Sample(sram, kTrain, 1, mc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation time: %v\n\n", train.SimTime)
	test, err := mc.Sample(sram, kTest, 2, mc.Options{})
	if err != nil {
		log.Fatal(err)
	}

	delays, _ := train.Metric("read_delay")
	fmt.Printf("nominal-ish read delay: mean %.1f ps, sigma %.1f ps\n\n",
		1e12*stats.Mean(delays), 1e12*stats.StdDev(delays))

	dict := basis.Linear(sram.Dim())
	design := basis.NewLazyDesign(dict, train.Points)
	cv, err := core.CrossValidate(&core.OMP{}, design, delays, 4, 30)
	if err != nil {
		log.Fatal(err)
	}
	model := cv.Model
	fTest, _ := test.Metric("read_delay")
	errRel := exp.TestError(model, dict, test.Points, fTest)
	fmt.Printf("OMP model: λ=%d of M=%d bases, held-out error %.2f%%\n\n",
		model.NNZ(), dict.Size(), 100*errRel)

	// Fig. 6: the coefficient magnitude profile.
	series := exp.Fig6Series(model)
	fmt.Println("coefficient magnitudes (Fig. 6, descending):")
	for i := 0; i < model.NNZ(); i++ {
		bar := strings.Repeat("█", 1+int(40*series[i]/series[0]))
		fmt.Printf("  %2d %.3e %s\n", i+1, series[i], bar)
	}
	fmt.Printf("  remaining %d coefficients: exactly zero\n\n", model.M-model.NNZ())

	// Which factors did OMP pick? Read-path devices, not random cells.
	fmt.Println("selected variation factors:")
	onPath := 0
	for i, idx := range model.Support {
		if idx == 0 {
			continue // constant term
		}
		name := sram.Space().FactorName(idx - 1)
		if !strings.Contains(name, "CELL") {
			onPath++
		}
		if i < 12 {
			fmt.Printf("  %-28s % .3e\n", name, model.Coef[i])
		}
	}
	fmt.Printf("\n%d of %d selected factors are read-path devices — the sparse\n", onPath, model.NNZ())
	fmt.Println("structure the paper exploits (Section V-B).")
}
