// Adaptive sampling: answer the practical question the paper leaves open —
// how many transistor-level simulations does an accurate model need? The
// loop grows the training set geometrically, reuses every earlier
// simulation, and stops when cross-validation says more samples no longer
// help.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/yield"
)

func main() {
	// The transistor-level OpAmp: every sample is a DC + AC spice run.
	amp, err := circuit.NewSpiceOpAmp()
	if err != nil {
		log.Fatal(err)
	}
	dict := basis.Linear(amp.Dim())
	fmt.Printf("transistor-level OpAmp: %d variation factors, M = %d\n\n", amp.Dim(), dict.Size())

	// Model the input-referred offset (metric index 3).
	fmt.Println("adaptive sampling (stop when CV error improves < 15% per doubling):")
	res, err := exp.AdaptiveFit(amp, dict, &core.OMP{}, exp.AdaptiveConfig{
		Metric:     3,
		InitialK:   32,
		MaxK:       512,
		RelImprove: 0.15,
		Folds:      4,
		MaxLambda:  20,
		Seed:       1,
		Logf: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstopped after %d simulations (converged: %v)\n", res.K, res.Converged)
	fmt.Printf("rounds:\n")
	for _, r := range res.Rounds {
		fmt.Printf("  K=%-4d  cv-error=%6.2f%%  λ=%d\n", r.K, 100*r.CVError, r.Lambda)
	}

	// What the final model says about the circuit.
	fmt.Printf("\noffset model: mean %.3g V, sigma %.3g V\n",
		yield.ModelMean(res.Model, dict), yield.ModelStd(res.Model, dict))
	sobol := yield.SobolTotal(res.Model, dict)
	fmt.Println("top variance contributors (total Sobol indices):")
	printed := 0
	for printed < 4 {
		best, bestV := -1, 0.0
		for i, v := range sobol {
			if v > bestV {
				best, bestV = i, v
			}
		}
		if best < 0 {
			break
		}
		fmt.Printf("  %-28s %5.1f%%\n", amp.Space().FactorName(best), 100*bestV)
		sobol[best] = 0
		printed++
	}
	corner, worst := yield.WorstCaseCorner(res.Model, dict, 3, true, 10)
	fmt.Printf("\n3σ worst-case offset: %.3g V (corner ‖ΔY‖ = 3)\n", worst)
	_ = corner
}
