// Quickstart: recover a sparse high-dimensional model from far fewer
// samples than coefficients — the core idea of the paper in ~60 lines.
//
// We build a synthetic performance function over 200 process variables whose
// quadratic Hermite expansion (20 301 potential coefficients) has only 8
// non-zero terms, sample it at just 150 points, and let OMP find the terms.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/stats"
)

func main() {
	// A "circuit" with known ground truth: 200 variables, degree-2,
	// 8 active basis functions, 1% observation noise.
	sim, err := circuit.NewSynthetic(7, 200, 2, 8, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	dict := basis.Quadratic(sim.Dim())
	fmt.Printf("dictionary: %d basis functions over %d variables\n", dict.Size(), sim.Dim())

	// Step 1 — run the (expensive) simulator at K random sampling points.
	const k = 150
	train, err := mc.Sample(sim, k, 1, mc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training samples: %d (K ≪ M: the system is underdetermined)\n", k)

	// Step 2 — fit with OMP; cross-validation picks the sparsity λ.
	design := basis.NewLazyDesign(dict, train.Points)
	f, _ := train.Metric("f")
	cv, err := core.CrossValidate(&core.OMP{}, design, f, 4, 20)
	if err != nil {
		log.Fatal(err)
	}
	model := cv.Model
	fmt.Printf("cross-validation selected λ = %d basis functions\n\n", cv.BestLambda)

	// Step 3 — validate on fresh samples.
	test, err := mc.Sample(sim, 1000, 2, mc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	testDesign := basis.NewLazyDesign(dict, test.Points)
	fTest, _ := test.Metric("f")
	errRel := stats.RelativeRMSError(model.Predict(testDesign), fTest)
	fmt.Printf("held-out relative RMS error: %.2f%%\n\n", 100*errRel)

	// Compare against the ground truth.
	truth := sim.TrueModel()
	truthSet := map[int]bool{}
	for _, s := range truth.Support {
		truthSet[s] = true
	}
	hits := 0
	fmt.Println("recovered basis functions:")
	for i, idx := range model.Support {
		mark := " "
		if truthSet[idx] {
			mark = "✓"
			hits++
		}
		fmt.Printf("  %s %-22s coef=% .4f (true % .4f)\n",
			mark, dict.Terms[idx].String(), model.Coef[i], truth.Coefficient(idx))
	}
	fmt.Printf("\n%d of %d true terms recovered from %d samples (%.1f%% of M)\n",
		hits, truth.NNZ(), k, 100*float64(k)/float64(dict.Size()))
}
