package rsm_test

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/server"
	"repro/rsm"
)

// pipelineFixture loads the committed example deck and spec.
func pipelineFixture(t *testing.T) (netlist string, spec rsm.PipelineSpec) {
	t.Helper()
	deck, err := os.ReadFile("../examples/netlists/rc_lowpass.cir")
	if err != nil {
		t.Fatal(err)
	}
	specJSON, err := os.ReadFile("../examples/netlists/rc_lowpass_pipeline.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		t.Fatal(err)
	}
	return string(deck), spec
}

// TestClientPipelineRoundTrip drives the netlist-in, model-out flow through
// the public client: RunPipeline + WaitPipeline against a real daemon, then
// Predict on the model the pipeline published.
func TestClientPipelineRoundTrip(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	srv, err := server.New(registry.New(), server.Config{FitWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer func() { hs.Close(); srv.Close() }()
	c := rsm.NewClient(hs.URL)

	netlist, spec := pipelineFixture(t)
	id, err := c.RunPipeline(ctx, rsm.PipelineRequest{Name: "rc-gain", Netlist: netlist, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitPipeline(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res := st.Pipeline
	if res == nil || res.Model.Name != "rc-gain" || res.Model.Version != 1 {
		t.Fatalf("pipeline result %+v, want rc-gain@v1", res)
	}
	if len(st.Stages) == 0 || res.SimSeconds <= 0 {
		t.Fatalf("missing stage cost accounting: stages=%d sim=%g", len(st.Stages), res.SimSeconds)
	}
	vals, err := c.Predict(ctx, "rc-gain", [][]float64{make([]float64, res.Dim)})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || math.Abs(vals[0]-(-3.0103)) > 0.1 {
		t.Fatalf("predict at origin = %v, want ≈ -3.01 dB", vals)
	}

	// A netlist-level failure surfaces through WaitPipeline's error.
	spec.Variation.Devices[0].Device = "R9"
	id, err = c.RunPipeline(ctx, rsm.PipelineRequest{Name: "bad", Netlist: netlist, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = c.WaitPipeline(ctx, id, 20*time.Millisecond); err == nil || !strings.Contains(err.Error(), "R9") {
		t.Fatalf("WaitPipeline error = %v, want failed naming R9", err)
	}
}

// TestClientCancelPipeline checks DELETE-to-cancel through the client: a
// queued pipeline behind a busy worker cancels before it ever runs.
func TestClientCancelPipeline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv, err := server.New(registry.New(), server.Config{FitWorkers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer func() { hs.Close(); srv.Close() }()
	c := rsm.NewClient(hs.URL)

	netlist, spec := pipelineFixture(t)
	// Two jobs on one worker: a large sampling campaign holds the worker so
	// the second job sits pending long enough to cancel deterministically.
	busySpec := spec
	busySpec.Sampling.Samples = 8192
	first, err := c.RunPipeline(ctx, rsm.PipelineRequest{Name: "busy", Netlist: netlist, Spec: busySpec})
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.RunPipeline(ctx, rsm.PipelineRequest{Name: "victim", Netlist: netlist, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.CancelPipeline(ctx, second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.JobCanceled {
		t.Fatalf("canceled pipeline state %s, want canceled", st.State)
	}
	if _, err := c.WaitPipeline(ctx, first, 20*time.Millisecond); err != nil {
		t.Fatalf("first pipeline: %v", err)
	}
	// The canceled job published nothing.
	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		if m.Name == "victim" {
			t.Fatal("canceled pipeline published a model")
		}
	}
}

// TestClientWatchJob tails a live pipeline over the SSE event stream: the
// callback sees lifecycle transitions, completed stages and solver
// telemetry in sequence order, and WatchJob returns the terminal status —
// the same result polling WaitPipeline would have produced.
func TestClientWatchJob(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	srv, err := server.New(registry.New(), server.Config{FitWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer func() { hs.Close(); srv.Close() }()
	c := rsm.NewClient(hs.URL)

	netlist, spec := pipelineFixture(t)
	id, err := c.RunPipeline(ctx, rsm.PipelineRequest{Name: "rc-watch", Netlist: netlist, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}

	var states, stages []string
	fits := 0
	lastSeq := -1
	st, err := c.WatchJob(ctx, id, func(ev rsm.JobEvent) {
		if ev.Seq <= lastSeq {
			t.Errorf("event %d arrived after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case rsm.JobEventState:
			states = append(states, ev.State)
		case rsm.JobEventStage:
			if ev.Stage != nil {
				stages = append(stages, ev.Stage.Stage)
			}
		case rsm.JobEventFit:
			fits++
		}
	})
	if err != nil {
		t.Fatalf("WatchJob: %v", err)
	}
	if st.State != rsm.JobDone || st.Pipeline == nil || st.Pipeline.Model.Name != "rc-watch" {
		t.Fatalf("terminal status %+v, want done rc-watch", st)
	}
	if len(states) == 0 || states[len(states)-1] != rsm.JobDone {
		t.Errorf("streamed states %v, want trailing done", states)
	}
	joined := strings.Join(stages, ",")
	for _, stage := range []string{"parse", "fit", "publish"} {
		if !strings.Contains(joined, stage) {
			t.Errorf("streamed stages %v missing %q", stages, stage)
		}
	}
	if fits == 0 {
		t.Error("stream carried no solver telemetry")
	}

	// Watching an unknown job surfaces the 404 as an error.
	if _, err := c.WatchJob(ctx, "job-999999", func(rsm.JobEvent) {}); err == nil {
		t.Error("WatchJob on unknown job returned nil error")
	}
}
