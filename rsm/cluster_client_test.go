package rsm_test

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/registry"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/rsm"
)

// startClusterPair boots a 2-node shard ring on real ports and returns the
// node base URLs plus a ring handle for ownership lookups. The client under
// test talks only to node 0; ownership on node 1 forces every request
// through the proxy/redirect path.
func startClusterPair(t *testing.T) (urls [2]string, ring *cluster.Cluster) {
	t.Helper()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	var lns [2]net.Listener
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		reg := registry.New()
		cl, err := cluster.New(reg, cluster.Config{
			Self: urls[i], Peers: urls[:], SyncInterval: -1, Logger: quiet,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(reg, server.Config{FitWorkers: 1, Cluster: cl, Logger: quiet})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(lns[i]) //nolint:errcheck // closed in cleanup
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
		})
		if i == 0 {
			ring = cl
		}
	}
	return urls, ring
}

// modelOn finds a name the ring assigns to the node at ownerURL.
func modelOn(t *testing.T, ring *cluster.Cluster, ownerURL, prefix string) string {
	t.Helper()
	for k := 0; k < 10000; k++ {
		name := prefix + "-" + string(rune('a'+k%26)) + string(rune('0'+k/26%10)) + string(rune('0'+k/260))
		if _, url, _ := ring.Owner(name); url == ownerURL {
			return name
		}
	}
	t.Fatalf("no model name owned by %s", ownerURL)
	return ""
}

// TestClientFollowsClusterRedirects is the regression test for job
// affinity: a fit or refine submitted through one node lives on the owning
// shard, and WaitJob/WaitRefine — polling a *different* node — must follow
// the 307 home instead of reporting the job missing.
func TestClientFollowsClusterRedirects(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	urls, ring := startClusterPair(t)
	c := rsm.NewClient(urls[0])
	name := modelOn(t, ring, urls[1], "redirfit")

	src := rng.New(7)
	pts, vals := noisyLinear(src, 40, 0.3)
	fitID, err := c.SubmitFit(ctx, rsm.FitRequest{Name: name, Points: pts, Values: vals, MaxLambda: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The ID is minted by the owning shard, not the node we submitted to.
	if i := strings.Index(fitID, "."); i < 0 {
		t.Fatalf("job id %q carries no node prefix", fitID)
	}
	st, err := c.WaitJob(ctx, fitID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob across nodes: %v", err)
	}
	if st.State != rsm.JobDone {
		t.Fatalf("fit state %s (%s), want done", st.State, st.Error)
	}

	newPts, newVals := noisyLinear(src, 120, 0.01)
	refID, err := c.Refine(ctx, name, rsm.RefineRequest{Points: newPts, Values: newVals})
	if err != nil {
		t.Fatal(err)
	}
	rst, err := c.WaitRefine(ctx, refID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitRefine across nodes: %v", err)
	}
	if rst.Refine == nil || rst.Refine.Outcome != rsm.RefineImproved {
		t.Fatalf("refine result %+v, want improved", rst.Refine)
	}
}

// TestClientClusterPredictAtLeastAndDelete: PredictAtLeast carries the
// read-your-writes floor through any node, and DeleteModel reaches the
// owner from anywhere.
func TestClientClusterPredictAtLeastAndDelete(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	urls, ring := startClusterPair(t)
	c := rsm.NewClient(urls[0])
	name := modelOn(t, ring, urls[1], "rywdel")

	info, err := c.UploadModel(ctx, name, envelopeFor(t))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("uploaded version %d, want 1", info.Version)
	}
	// Pin the read to the version the publish returned: f = 2·y0 − 3·y1.
	resp, err := c.PredictAtLeast(ctx, name, info.Version, [][]float64{{1, 0, 0}, {0, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 1 || len(resp.Values) != 2 || resp.Values[0] != 2 || resp.Values[1] != -3 {
		t.Fatalf("pinned predict %+v, want v1 values [2 -3]", resp)
	}

	dr, err := c.DeleteModel(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Deleted || dr.Name != name {
		t.Fatalf("delete response %+v", dr)
	}
	if _, err := c.Predict(ctx, name, [][]float64{{1, 0, 0}}); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("predict after delete: %v, want 404", err)
	}
}
