// Package rsm is the public face of the library: sparse response surface
// modeling of circuit performance variability, reproducing Xin Li's
// DAC'09/TCAD'10 system (OMP/LAR/STAR solvers over orthonormal Hermite
// bases, with cross-validated sparsity selection).
//
// The typical flow:
//
//  1. describe what varies (or use a built-in testbench from Circuits),
//  2. simulate a few hundred Monte Carlo samples (Sample),
//  3. fit a sparse model (Fit / CrossValidate) over a Hermite basis,
//  4. use the model: Predict, moments, yield, Sobol sensitivities.
//
// Everything here re-exports the internal packages with a stable, compact
// surface; see the Example functions for runnable end-to-end snippets.
package rsm

import (
	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/yield"
)

// Core modeling types.
type (
	// Basis is an orthonormal Hermite polynomial dictionary over independent
	// standard-normal variables.
	Basis = basis.Basis
	// Design is the solver-facing view of the sampled design matrix G.
	Design = basis.Design
	// Model is a fitted sparse model: selected basis indices + coefficients.
	Model = core.Model
	// Path is a nested sequence of models of increasing sparsity.
	Path = core.Path
	// Solver fits whole sparsity paths (OMP, LAR, STAR, CD, StOMP).
	Solver = core.PathFitter
	// Simulator maps variation factors to performance metrics.
	Simulator = circuit.Simulator
	// Dataset holds sampled points and simulated responses.
	Dataset = mc.Dataset
	// CVResult reports a cross-validated fit.
	CVResult = core.CVResult
	// Spec is a yield acceptance window.
	Spec = yield.Spec
	// YieldAnalyzer estimates distributions and yield from fitted models.
	YieldAnalyzer = yield.Analyzer
	// BasisDescriptor is the serializable recipe for rebuilding a basis;
	// it travels inside model envelopes (see Envelope in client.go).
	BasisDescriptor = basis.Descriptor
)

// LinearBasis returns the degree-1 Hermite dictionary over n variables
// (M = n+1 basis functions).
func LinearBasis(n int) *Basis { return basis.Linear(n) }

// QuadraticBasis returns the total-degree-2 dictionary
// (M = 1 + n + n(n+1)/2).
func QuadraticBasis(n int) *Basis { return basis.Quadratic(n) }

// TotalDegreeBasis returns the total-degree-d dictionary.
func TotalDegreeBasis(n, d int) *Basis { return basis.TotalDegree(n, d) }

// NewOMP returns the paper's proposed solver: orthogonal matching pursuit
// with least-squares re-fit of all active coefficients per iteration.
func NewOMP() Solver { return &core.OMP{} }

// NewLAR returns least angle regression (the DAC'09 solver).
func NewLAR() Solver { return &core.LAR{} }

// NewLasso returns LAR with the lasso modification and unpenalized re-fit.
func NewLasso() Solver { return &core.LAR{Lasso: true, Refit: true} }

// NewSTAR returns the DAC'08 matching-pursuit baseline.
func NewSTAR() Solver { return &core.STAR{} }

// NewCD returns the coordinate-descent lasso solver.
func NewCD() Solver { return &core.CD{Refit: true} }

// NewStOMP returns stagewise OMP (batched selection for very large M).
func NewStOMP() Solver { return &core.StOMP{} }

// Sample runs sim at n Monte Carlo points drawn with the given seed,
// evaluating in parallel.
func Sample(sim Simulator, n int, seed int64) (*Dataset, error) {
	return mc.Sample(sim, n, seed, mc.Options{})
}

// NewDesign builds the design matrix view for the sampled points, choosing
// dense or lazy storage by size.
func NewDesign(b *Basis, points [][]float64) Design {
	return basis.AutoDesign(b, points)
}

// Fit fits a sparse model with exactly lambda basis functions using OMP.
func Fit(b *Basis, points [][]float64, f []float64, lambda int) (*Model, error) {
	return (&core.OMP{}).Fit(NewDesign(b, points), f, lambda)
}

// CrossValidate selects the sparsity level by Q-fold cross-validation
// (Section IV-C of the paper) and refits on all data.
func CrossValidate(s Solver, b *Basis, points [][]float64, f []float64, folds, maxLambda int) (*CVResult, error) {
	return core.CrossValidate(s, NewDesign(b, points), f, folds, maxLambda)
}

// RelativeRMSError is the modeling-error metric of the paper's evaluation.
func RelativeRMSError(pred, truth []float64) float64 {
	return stats.RelativeRMSError(pred, truth)
}

// Mean returns the model's exact mean under ΔY ~ N(0, I).
func Mean(m *Model, b *Basis) float64 { return yield.ModelMean(m, b) }

// Std returns the model's exact standard deviation under ΔY ~ N(0, I).
func Std(m *Model, b *Basis) float64 { return yield.ModelStd(m, b) }

// SobolTotal returns per-variable total sensitivity indices.
func SobolTotal(m *Model, b *Basis) []float64 { return yield.SobolTotal(m, b) }

// NewYieldAnalyzer wraps fitted per-metric models for distribution and
// yield estimation.
func NewYieldAnalyzer(b *Basis, models map[string]*Model) (*YieldAnalyzer, error) {
	return yield.NewAnalyzer(b, models)
}

// NewRand returns a deterministic random source for yield estimation.
func NewRand(seed int64) *rng.Source { return rng.New(seed) }

// Circuits exposes the built-in testbenches.
var Circuits = struct {
	// OpAmp builds the 630-factor two-stage amplifier (analytic evaluation).
	OpAmp func() (Simulator, error)
	// SpiceOpAmp builds the transistor-level amplifier (DC + AC per sample).
	SpiceOpAmp func() (Simulator, error)
	// SRAM builds the read-path testbench with the given cell array size.
	SRAM func(rows, cols int) (Simulator, error)
	// RingOscillator builds the dense-model negative control.
	RingOscillator func(stages int) (Simulator, error)
	// Synthetic builds a known-ground-truth sparse benchmark.
	Synthetic func(seed int64, dim, degree, nnz int, noise float64) (Simulator, error)
}{
	OpAmp:      func() (Simulator, error) { return circuit.NewOpAmp() },
	SpiceOpAmp: func() (Simulator, error) { return circuit.NewSpiceOpAmp() },
	SRAM: func(rows, cols int) (Simulator, error) {
		return circuit.NewSRAM(circuit.SRAMConfig{Rows: rows, Cols: cols})
	},
	RingOscillator: func(stages int) (Simulator, error) { return circuit.NewRingOscillator(stages) },
	Synthetic: func(seed int64, dim, degree, nnz int, noise float64) (Simulator, error) {
		return circuit.NewSynthetic(seed, dim, degree, nnz, noise)
	},
}
