package rsm_test

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/server"
	"repro/rsm"
)

// TestServeEndToEnd is the serving subsystem's acceptance test: it starts
// the rsmd service on a random port, submits an async fit job for a
// synthetic sparse dataset, polls it to completion, batch-predicts 1 000
// held-out points through the API, and checks that the served model matches
// an offline fit of the same data exactly — then exercises upload, yield
// and the metrics counters through the same client.
func TestServeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	// Synthetic ground truth: 8 non-zero coefficients hidden in a quadratic
	// dictionary over 16 variables (M = 153), light noise.
	sim, err := rsm.Circuits.Synthetic(3, 16, 2, 8, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := rsm.Sample(sim, 1300, 11)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(300)
	trainF, err := train.Metric("f")
	if err != nil {
		t.Fatal(err)
	}
	testF, err := test.Metric("f")
	if err != nil {
		t.Fatal(err)
	}

	// Offline reference: the same cross-validated OMP fit the server will
	// run.
	b := rsm.QuadraticBasis(16)
	cv, err := rsm.CrossValidate(rsm.NewOMP(), b, train.Points, trainF, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	offlinePred := cv.Model.PredictBatch(b, nil, test.Points, 0)
	offlineErr := rsm.RelativeRMSError(offlinePred, testF)
	if offlineErr > 0.05 {
		t.Fatalf("offline fit is poor (%.2f%%); test setup broken", 100*offlineErr)
	}

	// Start the daemon on a random port and speak to it only through the
	// public client.
	srv, err := server.New(registry.New(), server.Config{FitWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	c := rsm.NewClient(hs.URL)
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	// Async fit job: submit, poll to completion.
	jobID, err := c.SubmitFit(ctx, rsm.FitRequest{
		Name: "synth", Solver: "omp", Degree: 2, Folds: 4, MaxLambda: 20,
		Points: train.Points, Values: trainF,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitJob(ctx, jobID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Result.Lambda != cv.BestLambda {
		t.Errorf("server selected λ=%d, offline λ=%d", st.Result.Lambda, cv.BestLambda)
	}

	// Batch-predict 1 000 held-out points and compare with the offline fit.
	served, err := c.Predict(ctx, "synth", test.Points)
	if err != nil {
		t.Fatal(err)
	}
	if len(served) != len(test.Points) {
		t.Fatalf("served %d values for %d points", len(served), len(test.Points))
	}
	servedErr := rsm.RelativeRMSError(served, testF)
	if math.Abs(servedErr-offlineErr) > 1e-9 {
		t.Fatalf("served error %.6f%% != offline %.6f%%", 100*servedErr, 100*offlineErr)
	}
	for k := range served {
		if math.Abs(served[k]-offlinePred[k]) > 1e-9*math.Max(1, math.Abs(offlinePred[k])) {
			t.Fatalf("point %d: served %g, offline %g", k, served[k], offlinePred[k])
		}
	}

	// Upload the offline model as a second registry entry and check it
	// lists with its provenance.
	info, err := c.UploadModel(ctx, "offline", &rsm.Envelope{
		Model: cv.Model,
		Basis: b.Desc,
		Prov:  rsm.Provenance{Solver: "OMP", Lambda: cv.BestLambda, Samples: train.Len(), Metric: "f"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.NNZ != cv.Model.NNZ() {
		t.Fatalf("upload info %+v", info)
	}
	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("listed %d models, want 2", len(models))
	}

	// Yield endpoint: exact moments plus a Monte Carlo quantile sweep.
	mid := rsm.Mean(cv.Model, b)
	yr, err := c.Yield(ctx, "synth", rsm.YieldRequest{
		Low: &mid, N: 200000, Quantiles: []float64{0.05, 0.5, 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	if yr.Yield == nil || *yr.Yield < 0.35 || *yr.Yield > 0.65 {
		t.Errorf("yield above the mean = %v, want ≈ 0.5", yr.Yield)
	}
	if !(yr.Quantiles[0] < yr.Quantiles[1] && yr.Quantiles[1] < yr.Quantiles[2]) {
		t.Errorf("quantiles not monotone: %v", yr.Quantiles)
	}
	wantStd := rsm.Std(cv.Model, b)
	if math.Abs(yr.Std-wantStd) > 1e-9 {
		t.Errorf("served std %g, closed-form %g", yr.Std, wantStd)
	}

	// /metrics must reflect everything this test just did.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	preds := m["predictions"].(map[string]any)
	if got := preds["synth"].(float64); got != 1000 {
		t.Errorf("prediction counter %v, want 1000", got)
	}
	jobs := m["jobs"].(map[string]any)
	if jobs["submitted"].(float64) != 1 || jobs["completed"].(float64) != 1 || jobs["failed"].(float64) != 0 {
		t.Errorf("job counters %v", jobs)
	}
	if m["models"].(float64) != 2 {
		t.Errorf("model count %v, want 2", m["models"])
	}
	requests := m["requests"].(map[string]any)
	fitRoute := requests["POST /v1/fit"].(map[string]any)
	if fitRoute["count"].(float64) != 1 {
		t.Errorf("fit route count %v", fitRoute)
	}
	predictRoute := requests["POST /v1/models/{name}/predict"].(map[string]any)
	if predictRoute["count"].(float64) != 1 || predictRoute["errors"].(float64) != 0 {
		t.Errorf("predict route stats %v", predictRoute)
	}
}

// TestClientErrorSurfacing checks that server-side errors arrive as typed
// client errors, not silent zero values.
func TestClientErrorSurfacing(t *testing.T) {
	ctx := context.Background()
	srv, err := server.New(registry.New(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	c := rsm.NewClient(hs.URL)

	if _, err := c.Predict(ctx, "ghost", [][]float64{{1}}); err == nil {
		t.Fatal("predict against unknown model should fail")
	}
	if _, err := c.Job(ctx, "job-424242"); err == nil {
		t.Fatal("unknown job should fail")
	}
	if _, err := c.SubmitFit(ctx, rsm.FitRequest{Name: "x", Solver: "newton",
		Points: [][]float64{{1}}, Values: []float64{1}}); err == nil {
		t.Fatal("unknown solver should fail at submit")
	}
}

// fastRetry keeps retry-path tests quick.
var fastRetry = rsm.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

// TestClientRetriesIdempotent checks that transient 503s on an idempotent
// call are retried until the daemon recovers.
func TestClientRetriesIdempotent(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(server.ListResponse{})
	}))
	defer hs.Close()
	c := rsm.NewClient(hs.URL)
	c.Retry = fastRetry
	if _, err := c.Models(context.Background()); err != nil {
		t.Fatalf("third attempt should have succeeded: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
}

// TestClientRetriesSubmitWithIdempotencyKey checks that fit submissions are
// retried on transient 503s, and that every attempt of one logical submit
// carries the same Idempotency-Key — the property that makes the retry safe
// against duplicate enqueues.
func TestClientRetriesSubmitWithIdempotencyKey(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		mu.Unlock()
		if calls.Add(1) < 3 {
			http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(server.FitResponse{JobID: "job-000001", State: "pending"})
	}))
	defer hs.Close()
	c := rsm.NewClient(hs.URL)
	c.Retry = fastRetry
	id, err := c.SubmitFit(context.Background(), rsm.FitRequest{Name: "x",
		Points: [][]float64{{1}}, Values: []float64{1}})
	if err != nil {
		t.Fatalf("third submit attempt should have succeeded: %v", err)
	}
	if id != "job-000001" {
		t.Fatalf("job id %q", id)
	}
	mu.Lock()
	seen := append([]string(nil), keys...)
	mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("server saw %d submit attempts, want 3", len(seen))
	}
	if seen[0] == "" {
		t.Fatal("submit carried no Idempotency-Key")
	}
	for i, k := range seen {
		if k != seen[0] {
			t.Fatalf("attempt %d used key %q, want the first attempt's %q", i, k, seen[0])
		}
	}
	// Distinct logical submits must not share a key.
	if _, err := c.SubmitFit(context.Background(), rsm.FitRequest{Name: "x",
		Points: [][]float64{{1}}, Values: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	last := keys[len(keys)-1]
	mu.Unlock()
	if last == seen[0] {
		t.Fatal("second logical submit reused the first submit's Idempotency-Key")
	}
}

// TestClientDoesNotRetryClientErrors checks that definitive answers (404)
// come back immediately, with no retry churn.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"unknown job"}`, http.StatusNotFound)
	}))
	defer hs.Close()
	c := rsm.NewClient(hs.URL)
	c.Retry = fastRetry
	if _, err := c.Job(context.Background(), "job-000001"); err == nil {
		t.Fatal("404 should surface as an error")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1", n)
	}
}

// TestClientRetryHonorsRetryAfter checks that a server-directed Retry-After
// stretches the backoff beyond the computed exponential delay.
func TestClientRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(server.ListResponse{})
	}))
	defer hs.Close()
	c := rsm.NewClient(hs.URL)
	c.Retry = rsm.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Second}
	start := time.Now()
	if _, err := c.Models(context.Background()); err != nil {
		t.Fatalf("retry should have succeeded: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v, want ≥ ~1s per Retry-After", elapsed)
	}
}

// TestClientRetryStopsOnContextDone checks that a canceled context cuts the
// retry loop short instead of sleeping through the remaining backoff.
func TestClientRetryStopsOnContextDone(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer hs.Close()
	c := rsm.NewClient(hs.URL)
	c.Retry = rsm.RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Models(ctx)
	if err == nil {
		t.Fatal("expected failure against a permanently overloaded daemon")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop kept sleeping %v past context deadline", elapsed)
	}
}

// TestWaitJobReturnsOnTerminalStates checks that WaitJob stops polling the
// moment a job reaches any terminal state — failed, canceled or timed_out —
// rather than spinning until its context deadline.
func TestWaitJobReturnsOnTerminalStates(t *testing.T) {
	for _, state := range []string{server.JobFailed, server.JobCanceled, server.JobTimedOut} {
		var calls atomic.Int64
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			calls.Add(1)
			_ = json.NewEncoder(w).Encode(server.JobStatus{ID: "job-000001", State: state, Error: "boom"})
		}))
		c := rsm.NewClient(hs.URL)
		start := time.Now()
		st, err := c.WaitJob(context.Background(), "job-000001", time.Minute)
		hs.Close()
		if err == nil || !strings.Contains(err.Error(), state) {
			t.Fatalf("state %s: want error naming the state, got %v", state, err)
		}
		if st == nil || st.State != state {
			t.Fatalf("state %s: status %+v", state, st)
		}
		if n := calls.Load(); n != 1 {
			t.Fatalf("state %s: WaitJob polled %d times, want 1", state, n)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("state %s: WaitJob took %v despite terminal first poll", state, elapsed)
		}
	}
}

// TestCancelJobRoundTrip drives DELETE /v1/jobs/{id} through the client
// against a real server: canceling a queued job lands it in state canceled
// and WaitJob notices immediately.
func TestCancelJobRoundTrip(t *testing.T) {
	ctx := context.Background()
	// One worker, deep queue, and two jobs: the second is guaranteed to
	// still be queued (or just starting) when we cancel it.
	srv, err := server.New(registry.New(), server.Config{FitWorkers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	c := rsm.NewClient(hs.URL)
	req := rsm.FitRequest{Name: "cjob", Degree: 2, Folds: 2, MaxLambda: 20,
		Points: [][]float64{{0.1, 0.2}, {0.3, -0.4}, {-0.5, 0.6}, {0.7, 0.8},
			{-0.9, 0.1}, {0.2, -0.3}, {0.4, 0.5}, {-0.6, -0.7}},
		Values: []float64{1, 2, 3, 4, 5, 6, 7, 8}}
	if _, err := c.SubmitFit(ctx, req); err != nil {
		t.Fatal(err)
	}
	id2, err := c.SubmitFit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CancelJob(ctx, id2); err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitJob(ctx, id2, 10*time.Millisecond)
	switch st.State {
	case server.JobCanceled:
		if err == nil || !strings.Contains(err.Error(), server.JobCanceled) {
			t.Fatalf("canceled job should surface an error naming the state, got %v", err)
		}
	case server.JobDone:
		// The single worker got to the job before the cancel; a completed
		// job stays completed, which is the documented no-op behavior.
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("state %s after cancel (err %v)", st.State, err)
	}
	// Canceling again (or canceling a finished job) is idempotent.
	st2, err := c.CancelJob(ctx, id2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != st.State {
		t.Fatalf("second cancel changed state %s → %s", st.State, st2.State)
	}
}

// TestClientRequestIDPropagation: the client stamps one X-Request-Id on
// every attempt of an exchange, and surfaces the ID on errors through
// rsm.RequestID so callers can quote it against daemon logs.
func TestClientRequestIDPropagation(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		mu.Lock()
		seen = append(seen, id)
		mu.Unlock()
		w.Header().Set("X-Request-Id", id)
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer hs.Close()
	c := rsm.NewClient(hs.URL)
	c.Retry = fastRetry

	_, err := c.Models(context.Background())
	if err == nil {
		t.Fatal("all-503 exchange should fail")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != fastRetry.MaxAttempts {
		t.Fatalf("server saw %d attempts, want %d", len(seen), fastRetry.MaxAttempts)
	}
	if seen[0] == "" {
		t.Fatal("client sent no X-Request-Id")
	}
	for i, id := range seen {
		if id != seen[0] {
			t.Fatalf("attempt %d used ID %q, want the first attempt's %q (one trace per exchange)", i, id, seen[0])
		}
	}
	if got := rsm.RequestID(err); got != seen[0] {
		t.Fatalf("rsm.RequestID(err) = %q, want %q", got, seen[0])
	}
	if !strings.Contains(err.Error(), seen[0]) {
		t.Fatalf("error text %q does not quote the request ID", err)
	}

	// Non-httpError values carry no ID.
	if got := rsm.RequestID(context.Canceled); got != "" {
		t.Fatalf("RequestID on foreign error = %q, want empty", got)
	}
}

// TestClientRequestIDAgainstDaemon checks the full loop against the real
// server: the ID the client generated comes back on the job record.
func TestClientRequestIDAgainstDaemon(t *testing.T) {
	ctx := context.Background()
	srv, err := server.New(registry.New(), server.Config{FitWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	c := rsm.NewClient(hs.URL)

	id, err := c.SubmitFit(ctx, rsm.FitRequest{Name: "trace", Folds: 2, MaxLambda: 3,
		Points: [][]float64{{0.1, 0.2}, {0.3, -0.4}, {-0.5, 0.6}, {0.7, 0.8}, {0.2, -0.6}, {-0.3, 0.5}},
		Values: []float64{1, 2, 3, 4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitJob(ctx, id, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.RequestID == "" {
		t.Fatal("job record carries no request_id")
	}
	if len(st.Events) == 0 {
		t.Fatal("job record carries no fit telemetry events")
	}
}
