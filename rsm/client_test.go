package rsm_test

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/server"
	"repro/rsm"
)

// TestServeEndToEnd is the serving subsystem's acceptance test: it starts
// the rsmd service on a random port, submits an async fit job for a
// synthetic sparse dataset, polls it to completion, batch-predicts 1 000
// held-out points through the API, and checks that the served model matches
// an offline fit of the same data exactly — then exercises upload, yield
// and the metrics counters through the same client.
func TestServeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	// Synthetic ground truth: 8 non-zero coefficients hidden in a quadratic
	// dictionary over 16 variables (M = 153), light noise.
	sim, err := rsm.Circuits.Synthetic(3, 16, 2, 8, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := rsm.Sample(sim, 1300, 11)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(300)
	trainF, err := train.Metric("f")
	if err != nil {
		t.Fatal(err)
	}
	testF, err := test.Metric("f")
	if err != nil {
		t.Fatal(err)
	}

	// Offline reference: the same cross-validated OMP fit the server will
	// run.
	b := rsm.QuadraticBasis(16)
	cv, err := rsm.CrossValidate(rsm.NewOMP(), b, train.Points, trainF, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	offlinePred := cv.Model.PredictBatch(b, nil, test.Points, 0)
	offlineErr := rsm.RelativeRMSError(offlinePred, testF)
	if offlineErr > 0.05 {
		t.Fatalf("offline fit is poor (%.2f%%); test setup broken", 100*offlineErr)
	}

	// Start the daemon on a random port and speak to it only through the
	// public client.
	srv := server.New(registry.New(), server.Config{FitWorkers: 2})
	hs := httptest.NewServer(srv)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	c := rsm.NewClient(hs.URL)
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	// Async fit job: submit, poll to completion.
	jobID, err := c.SubmitFit(ctx, rsm.FitRequest{
		Name: "synth", Solver: "omp", Degree: 2, Folds: 4, MaxLambda: 20,
		Points: train.Points, Values: trainF,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitJob(ctx, jobID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Result.Lambda != cv.BestLambda {
		t.Errorf("server selected λ=%d, offline λ=%d", st.Result.Lambda, cv.BestLambda)
	}

	// Batch-predict 1 000 held-out points and compare with the offline fit.
	served, err := c.Predict(ctx, "synth", test.Points)
	if err != nil {
		t.Fatal(err)
	}
	if len(served) != len(test.Points) {
		t.Fatalf("served %d values for %d points", len(served), len(test.Points))
	}
	servedErr := rsm.RelativeRMSError(served, testF)
	if math.Abs(servedErr-offlineErr) > 1e-9 {
		t.Fatalf("served error %.6f%% != offline %.6f%%", 100*servedErr, 100*offlineErr)
	}
	for k := range served {
		if math.Abs(served[k]-offlinePred[k]) > 1e-9*math.Max(1, math.Abs(offlinePred[k])) {
			t.Fatalf("point %d: served %g, offline %g", k, served[k], offlinePred[k])
		}
	}

	// Upload the offline model as a second registry entry and check it
	// lists with its provenance.
	info, err := c.UploadModel(ctx, "offline", &rsm.Envelope{
		Model: cv.Model,
		Basis: b.Desc,
		Prov:  rsm.Provenance{Solver: "OMP", Lambda: cv.BestLambda, Samples: train.Len(), Metric: "f"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.NNZ != cv.Model.NNZ() {
		t.Fatalf("upload info %+v", info)
	}
	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("listed %d models, want 2", len(models))
	}

	// Yield endpoint: exact moments plus a Monte Carlo quantile sweep.
	mid := rsm.Mean(cv.Model, b)
	yr, err := c.Yield(ctx, "synth", rsm.YieldRequest{
		Low: &mid, N: 200000, Quantiles: []float64{0.05, 0.5, 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	if yr.Yield == nil || *yr.Yield < 0.35 || *yr.Yield > 0.65 {
		t.Errorf("yield above the mean = %v, want ≈ 0.5", yr.Yield)
	}
	if !(yr.Quantiles[0] < yr.Quantiles[1] && yr.Quantiles[1] < yr.Quantiles[2]) {
		t.Errorf("quantiles not monotone: %v", yr.Quantiles)
	}
	wantStd := rsm.Std(cv.Model, b)
	if math.Abs(yr.Std-wantStd) > 1e-9 {
		t.Errorf("served std %g, closed-form %g", yr.Std, wantStd)
	}

	// /metrics must reflect everything this test just did.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	preds := m["predictions"].(map[string]any)
	if got := preds["synth"].(float64); got != 1000 {
		t.Errorf("prediction counter %v, want 1000", got)
	}
	jobs := m["jobs"].(map[string]any)
	if jobs["submitted"].(float64) != 1 || jobs["completed"].(float64) != 1 || jobs["failed"].(float64) != 0 {
		t.Errorf("job counters %v", jobs)
	}
	if m["models"].(float64) != 2 {
		t.Errorf("model count %v, want 2", m["models"])
	}
	requests := m["requests"].(map[string]any)
	fitRoute := requests["POST /v1/fit"].(map[string]any)
	if fitRoute["count"].(float64) != 1 {
		t.Errorf("fit route count %v", fitRoute)
	}
	predictRoute := requests["POST /v1/models/{name}/predict"].(map[string]any)
	if predictRoute["count"].(float64) != 1 || predictRoute["errors"].(float64) != 0 {
		t.Errorf("predict route stats %v", predictRoute)
	}
}

// TestClientErrorSurfacing checks that server-side errors arrive as typed
// client errors, not silent zero values.
func TestClientErrorSurfacing(t *testing.T) {
	ctx := context.Background()
	srv := server.New(registry.New(), server.Config{})
	hs := httptest.NewServer(srv)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	c := rsm.NewClient(hs.URL)

	if _, err := c.Predict(ctx, "ghost", [][]float64{{1}}); err == nil {
		t.Fatal("predict against unknown model should fail")
	}
	if _, err := c.Job(ctx, "job-424242"); err == nil {
		t.Fatal("unknown job should fail")
	}
	if _, err := c.SubmitFit(ctx, rsm.FitRequest{Name: "x", Solver: "newton",
		Points: [][]float64{{1}}, Values: []float64{1}}); err == nil {
		t.Fatal("unknown solver should fail at submit")
	}
}
