package rsm

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/server"
)

// Serving-layer types, re-exported so callers never import internals.
type (
	// Envelope is the versioned serialized model: coefficients + basis
	// descriptor + fit provenance. It is what rsmd stores and serves.
	Envelope = core.Envelope
	// Provenance records how a stored model was fit.
	Provenance = core.Provenance
	// FitRequest submits an asynchronous server-side fit.
	FitRequest = server.FitRequest
	// FitResult is a completed fit job's outcome.
	FitResult = server.FitResult
	// RefineRequest submits new samples to continue a stored model's fit
	// (incremental refit). Name is taken from the Refine call's argument.
	RefineRequest = server.RefineRequest
	// RefineResult is a completed refine job's outcome: whether the refit
	// improved on the parent and was published.
	RefineResult = server.RefineResult
	// RefineProvenance links a refined model version to its parent.
	RefineProvenance = core.RefineProvenance
	// JobStatus reports an async fit job's lifecycle.
	JobStatus = server.JobStatus
	// ModelInfo summarizes a stored model version.
	ModelInfo = server.ModelInfo
	// DeleteResponse acknowledges a model delete.
	DeleteResponse = server.DeleteResponse
	// PredictResponse carries batched model values plus the version that
	// produced them and the micro-batch coalescing count.
	PredictResponse = server.PredictResponse
	// YieldRequest configures a server-side yield/quantile query.
	YieldRequest = server.YieldRequest
	// YieldResponse reports yield, moments and quantiles.
	YieldResponse = server.YieldResponse
	// PipelineRequest submits a netlist-in, model-out pipeline job.
	PipelineRequest = server.PipelineRequest
	// PipelineSpec configures a pipeline's variation space, measurement,
	// sampling campaign and fit.
	PipelineSpec = pipeline.Spec
	// PipelineResult is a completed pipeline job's outcome.
	PipelineResult = server.PipelineResult
	// PipelineStageInfo is one stage in a pipeline job's timeline with its
	// cost split (wall-clock, simulation and regression seconds).
	PipelineStageInfo = server.PipelineStageInfo
	// JobEvent is one entry in a job's live event timeline (state
	// transitions, solver telemetry, pipeline stages), as streamed by
	// WatchJob.
	JobEvent = server.JobEvent
	// TraceResponse is one trace's assembled span tree.
	TraceResponse = server.TraceResponse
	// TraceSummary is one trace's header in a trace listing.
	TraceSummary = server.TraceSummary
	// SpanNode is one span plus its children in a trace tree.
	SpanNode = server.SpanNode
)

// JobEvent types, re-exported for WatchJob callbacks.
const (
	JobEventState = server.JobEventState
	JobEventFit   = server.JobEventFit
	JobEventStage = server.JobEventStage
)

// Refine outcomes, re-exported for RefineResult.Outcome comparisons.
const (
	RefineImproved = server.RefineImproved
	RefineRejected = server.RefineRejected
)

// Job lifecycle states, re-exported so WatchJob callbacks and JobStatus
// consumers can compare without importing internals.
const (
	JobPending  = server.JobPending
	JobRunning  = server.JobRunning
	JobDone     = server.JobDone
	JobFailed   = server.JobFailed
	JobCanceled = server.JobCanceled
	JobTimedOut = server.JobTimedOut
)

// RetryPolicy tunes the client's retry loop for idempotent requests. The
// zero value selects the defaults noted per field; set MaxAttempts to 1 to
// disable retries entirely.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (default 3).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps any single backoff, including server-directed
	// Retry-After waits (default 1s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// backoff computes the pause before the given retry (attempt ≥ 1):
// exponential in the attempt number with equal jitter, stretched to any
// server-directed Retry-After, and capped at MaxDelay.
func (p RetryPolicy) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// Client is a thin HTTP client for an rsmd daemon. Idempotent requests
// (everything except UploadModel and SubmitFit) are retried per Retry on
// transport errors and on 429/502/503/504 responses — the statuses rsmd
// uses for load shedding and drain — honoring Retry-After headers and the
// request context's deadline.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// Retry tunes retries for idempotent requests (zero value = defaults).
	Retry RetryPolicy
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// retryStatus reports whether a response status signals a transient
// condition worth retrying.
func retryStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do runs one JSON exchange. A non-2xx status is surfaced as an error
// carrying the server's error body. Idempotent exchanges are retried with
// backoff; non-idempotent ones (uploads) get exactly one attempt, since a
// transport error leaves it unknown whether the server acted. Job submits
// become idempotent — and therefore retryable — by carrying a generated
// Idempotency-Key (see doWith): a retry that reaches a daemon which already
// accepted the job gets the original job ID back, never a duplicate job.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	return c.doWith(ctx, method, path, "", in, out, idempotent)
}

// doWith is do with an optional Idempotency-Key attached to every attempt.
func (c *Client) doWith(ctx context.Context, method, path, idemKey string, in, out any, idempotent bool) error {
	return c.doHeaders(ctx, method, path, idemKey, nil, in, out, idempotent)
}

// doHeaders is doWith with extra request headers attached to every attempt
// (the cluster read-your-writes floor rides here).
func (c *Client) doHeaders(ctx context.Context, method, path, idemKey string, hdr http.Header, in, out any, idempotent bool) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return fmt.Errorf("rsm: encode %s %s: %w", method, path, err)
		}
	}
	pol := c.Retry.withDefaults()
	attempts := pol.MaxAttempts
	if !idempotent {
		attempts = 1
	}
	// One trace ID covers every attempt of the exchange, so the daemon's
	// logs show the retries of a single logical call under one request_id.
	requestID := obs.NewRequestID()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(pol.backoff(attempt, lastRetryAfter(lastErr)))
			select {
			case <-ctx.Done():
				t.Stop()
				return lastErr
			case <-t.C:
			}
		}
		status, err := c.doOnce(ctx, method, path, requestID, idemKey, hdr, data, in != nil, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return lastErr
		}
		if status != 0 && !retryStatus(status) {
			return lastErr // definitive server answer; retrying can't help
		}
	}
	return lastErr
}

// httpError is a non-2xx response, keeping the status, any Retry-After
// hint, and the exchange's trace ID available to the retry loop and to
// callers via RequestID.
type httpError struct {
	msg        string
	status     int
	retryAfter time.Duration
	requestID  string
}

func (e *httpError) Error() string { return e.msg }

// RequestID extracts the X-Request-Id of the failed exchange from an error
// returned by a Client method, or "" when the error carries none. Quote it
// when correlating a client-side failure with the daemon's logs.
func RequestID(err error) string {
	if he, ok := err.(*httpError); ok {
		return he.requestID
	}
	return ""
}

// StatusCode extracts the HTTP status of the failed exchange from an error
// returned by a Client method, or 0 when the error carries none (transport
// failure, context cancellation). Load tools use it to separate definitive
// 4xx rejections from serving failures.
func StatusCode(err error) int {
	if he, ok := err.(*httpError); ok {
		return he.status
	}
	return 0
}

// lastRetryAfter extracts the Retry-After hint from a previous attempt's
// error, if any.
func lastRetryAfter(err error) time.Duration {
	if he, ok := err.(*httpError); ok {
		return he.retryAfter
	}
	return 0
}

// doOnce runs a single HTTP round trip. status is 0 when the request never
// produced a response (transport error).
func (c *Client) doOnce(ctx context.Context, method, path, requestID, idemKey string, hdr http.Header, data []byte, hasBody bool, out any) (int, error) {
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return 0, fmt.Errorf("rsm: %s %s: %w", method, path, err)
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	req.Header.Set(obs.RequestIDHeader, requestID)
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("rsm: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		he := &httpError{status: resp.StatusCode, requestID: requestID}
		// Prefer the ID the server actually used (it echoes ours back, but a
		// proxy could have replaced it).
		if echoed := resp.Header.Get(obs.RequestIDHeader); echoed != "" {
			he.requestID = echoed
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			he.retryAfter = time.Duration(secs) * time.Second
		}
		var e server.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			he.msg = fmt.Sprintf("rsm: %s %s: %s (HTTP %d, request %s)", method, path, e.Error, resp.StatusCode, he.requestID)
		} else {
			he.msg = fmt.Sprintf("rsm: %s %s: HTTP %d (request %s)", method, path, resp.StatusCode, he.requestID)
		}
		return resp.StatusCode, he
	}
	if out == nil {
		return resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return resp.StatusCode, fmt.Errorf("rsm: decode %s %s: %w", method, path, err)
	}
	return resp.StatusCode, nil
}

// Health checks daemon liveness. A draining daemon reports unhealthy
// (/healthz answers 503).
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, true)
}

// UploadModel publishes a fitted model envelope under name and returns the
// stored version's summary.
func (c *Client) UploadModel(ctx context.Context, name string, env *Envelope) (*ModelInfo, error) {
	var buf bytes.Buffer
	if err := core.WriteEnvelope(&buf, env); err != nil {
		return nil, err
	}
	var info ModelInfo
	req := server.UploadRequest{Name: name, Model: json.RawMessage(buf.Bytes())}
	if err := c.do(ctx, http.MethodPost, "/v1/models", req, &info, false); err != nil {
		return nil, err
	}
	return &info, nil
}

// Models lists the latest version of every stored model.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var resp server.ListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/models", nil, &resp, true); err != nil {
		return nil, err
	}
	return resp.Models, nil
}

// SubmitFit enqueues an async fit job and returns its id. The submit
// carries a generated Idempotency-Key, so it is safely retried on transient
// failures: if an earlier attempt did reach the daemon, the retry returns
// the already-accepted job's ID instead of enqueuing a duplicate.
func (c *Client) SubmitFit(ctx context.Context, req FitRequest) (string, error) {
	var resp server.FitResponse
	if err := c.doWith(ctx, http.MethodPost, "/v1/fit", obs.NewRequestID(), req, &resp, true); err != nil {
		return "", err
	}
	return resp.JobID, nil
}

// Refine enqueues an incremental-refit job for the named model: the daemon
// continues the stored fit from its persisted checkpoint with req's new
// samples appended, and publishes a new version only when cross-validation
// error improves. Like SubmitFit the submit carries a generated
// Idempotency-Key, so it is safely retried without risking duplicate jobs.
func (c *Client) Refine(ctx context.Context, name string, req RefineRequest) (string, error) {
	var resp server.RefineResponse
	if err := c.doWith(ctx, http.MethodPost, "/v1/models/"+name+"/refine", obs.NewRequestID(), req, &resp, true); err != nil {
		return "", err
	}
	return resp.JobID, nil
}

// WaitRefine polls the refine job every interval until it reaches any
// terminal state or ctx expires, with WaitJob's contract. On done, the
// returned status's Refine field carries the outcome — whether a new
// version was published or the refit was rejected by the publish gate.
func (c *Client) WaitRefine(ctx context.Context, id string, interval time.Duration) (*JobStatus, error) {
	return c.waitTerminal(ctx, "refine", id, interval, c.Job)
}

// Job polls one fit job.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// CancelJob asks the daemon to cancel a fit job and returns its (possibly
// already terminal) status. Cancellation is idempotent: a finished or
// already-canceled job is returned unchanged.
func (c *Client) CancelJob(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// waitMaxPollFailures bounds how many consecutive failed polls a Wait*
// call rides out before surfacing the error. At the default 50ms interval
// this tolerates roughly half a second of daemon unavailability — a restart
// with journal recovery — without abandoning the job.
const waitMaxPollFailures = 10

// waitTerminal is the shared Wait* loop: poll until a terminal state, ctx
// expiry, or waitMaxPollFailures consecutive poll failures. Transient
// failures are expected across a daemon restart: connections drop while the
// process is down, and a poll can even 404 briefly if it lands between
// listener start and journal replay on an old daemon version — the job
// reappears once recovery re-registers it.
func (c *Client) waitTerminal(ctx context.Context, kind, id string, interval time.Duration,
	poll func(context.Context, string) (*JobStatus, error)) (*JobStatus, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	failures := 0
	for {
		st, err := poll(ctx, id)
		switch {
		case err == nil:
			failures = 0
			switch st.State {
			case server.JobDone:
				return st, nil
			case server.JobFailed, server.JobCanceled, server.JobTimedOut:
				return st, fmt.Errorf("rsm: %s %s %s: %s", kind, id, st.State, st.Error)
			}
		case ctx.Err() != nil:
			return st, err
		default:
			failures++
			if failures >= waitMaxPollFailures {
				return nil, fmt.Errorf("rsm: waiting for %s %s: %d consecutive poll failures, giving up: %w",
					kind, id, failures, err)
			}
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// WaitJob polls the job every interval until it reaches any terminal state
// (done, failed, canceled or timed_out) or ctx expires. It returns promptly
// on every terminal state; unsuccessful ones come back alongside an error
// carrying the state and the job's message. Transient poll failures — a
// daemon restarting under the wait — are retried for up to
// waitMaxPollFailures consecutive polls before the wait gives up.
func (c *Client) WaitJob(ctx context.Context, id string, interval time.Duration) (*JobStatus, error) {
	return c.waitTerminal(ctx, "job", id, interval, c.Job)
}

// WatchJob tails the job's live event stream (SSE), invoking fn for every
// event — state transitions, per-iteration solver telemetry, pipeline
// stages — as the daemon emits it, and returns the job's final status with
// WaitJob's contract: done comes back clean, every other terminal state
// alongside an error carrying the state and the job's message. Fit jobs and
// pipeline jobs both work. The stream is a single attempt (an SSE tail is
// not idempotent work to replay); if the connection drops while the job is
// still live, WatchJob fetches the status once and reports the
// interruption.
func (c *Client) WatchJob(ctx context.Context, id string, fn func(JobEvent)) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events?stream=1", nil)
	if err != nil {
		return nil, fmt.Errorf("rsm: watch job %s: %w", id, err)
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set(obs.RequestIDHeader, obs.NewRequestID())
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("rsm: watch job %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return nil, fmt.Errorf("rsm: watch job %s: %s (HTTP %d)", id, e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("rsm: watch job %s: HTTP %d", id, resp.StatusCode)
	}
	// Minimal SSE reader: accumulate data: lines until the blank separator,
	// ignore comments and the id:/event: fields (the type rides in the JSON).
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) > 0 {
				var ev JobEvent
				if json.Unmarshal(data, &ev) == nil && fn != nil {
					fn(ev)
				}
				data = data[:0]
			}
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		}
	}
	// The stream ended: terminal-state close, daemon drain, or a dropped
	// connection. The status poll below distinguishes them.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := c.Job(ctx, id)
	if err != nil {
		return nil, fmt.Errorf("rsm: watch job %s: final status: %w", id, err)
	}
	switch st.State {
	case server.JobDone:
		return st, nil
	case server.JobFailed, server.JobCanceled, server.JobTimedOut:
		return st, fmt.Errorf("rsm: job %s %s: %s", id, st.State, st.Error)
	}
	return st, fmt.Errorf("rsm: watch job %s: event stream ended while job still %s", id, st.State)
}

// JobTrace fetches the job's assembled trace tree — the span-level account
// of where its time went (queue wait, journal, stages, solver, CV folds).
func (c *Client) JobTrace(ctx context.Context, id string) (*TraceResponse, error) {
	var tr TraceResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, &tr, true); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Traces lists the daemon's stored traces, newest-first (the unfiltered
// view of GET /v1/traces; use Trace to fetch one tree).
func (c *Client) Traces(ctx context.Context) ([]TraceSummary, error) {
	var resp server.TraceListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/traces", nil, &resp, true); err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// Trace fetches one trace's assembled span tree by trace ID (as carried in
// a JobStatus, a metric exemplar, or a slow-request log line).
func (c *Client) Trace(ctx context.Context, traceID string) (*TraceResponse, error) {
	var tr TraceResponse
	if err := c.do(ctx, http.MethodGet, "/v1/traces/"+traceID, nil, &tr, true); err != nil {
		return nil, err
	}
	return &tr, nil
}

// RunPipeline enqueues a netlist-in, model-out pipeline job and returns
// its id. Like SubmitFit it carries a generated Idempotency-Key, making the
// submit retryable without risking duplicate jobs.
func (c *Client) RunPipeline(ctx context.Context, req PipelineRequest) (string, error) {
	var resp server.PipelineResponse
	if err := c.doWith(ctx, http.MethodPost, "/v1/pipelines", obs.NewRequestID(), req, &resp, true); err != nil {
		return "", err
	}
	return resp.JobID, nil
}

// Pipeline polls one pipeline job; its status carries the stage timeline
// and, once done, the published model and per-solver trials.
func (c *Client) Pipeline(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/pipelines/"+id, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// CancelPipeline asks the daemon to cancel a pipeline job and returns its
// (possibly already terminal) status. Cancellation stops the simulator
// workers within one in-flight sample each and publishes nothing.
func (c *Client) CancelPipeline(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/pipelines/"+id, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitPipeline polls the pipeline job every interval until it reaches any
// terminal state or ctx expires, with WaitJob's contract: done comes back
// clean, every other terminal state alongside an error carrying the state
// and the job's message, and transient poll failures (daemon restart) are
// ridden out for up to waitMaxPollFailures consecutive polls.
func (c *Client) WaitPipeline(ctx context.Context, id string, interval time.Duration) (*JobStatus, error) {
	return c.waitTerminal(ctx, "pipeline", id, interval, c.Pipeline)
}

// Predict evaluates the named model at a batch of points.
func (c *Client) Predict(ctx context.Context, name string, points [][]float64) ([]float64, error) {
	resp, err := c.PredictInfo(ctx, name, points)
	if err != nil {
		return nil, err
	}
	return resp.Values, nil
}

// PredictInfo evaluates the named model at a batch of points and returns
// the full response: the values plus the model version they came from and
// how many concurrent requests the daemon's micro-batcher coalesced with
// this one. Callers that pin results to versions (e.g. under concurrent
// re-publication of a model) should use this over Predict.
func (c *Client) PredictInfo(ctx context.Context, name string, points [][]float64) (*PredictResponse, error) {
	var resp PredictResponse
	req := server.PredictRequest{Points: points}
	if err := c.do(ctx, http.MethodPost, "/v1/models/"+name+"/predict", req, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PredictAtLeast evaluates the model like PredictInfo, but pins a version
// floor for read-your-writes across a cluster: the node answering serves
// from its local replica only when it already holds at least minVersion of
// the model (the version UploadModel or a refine returned), and forwards
// to the owning shard otherwise — a just-published version is never read
// back older through a lagging replica. Against a single unclustered
// daemon the floor is a no-op.
func (c *Client) PredictAtLeast(ctx context.Context, name string, minVersion int, points [][]float64) (*PredictResponse, error) {
	var resp PredictResponse
	req := server.PredictRequest{Points: points}
	hdr := http.Header{}
	if minVersion > 0 {
		hdr.Set("X-RSM-Min-Version", strconv.Itoa(minVersion))
	}
	if err := c.doHeaders(ctx, http.MethodPost, "/v1/models/"+name+"/predict", "", hdr, req, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DeleteModel removes every stored version of the named model. In a
// cluster the delete lands on the owning shard and propagates to replicas
// as a tombstone, so the name's dead version numbers are never reused.
// Deleting is idempotent from the caller's perspective, but an unknown
// name is an error.
func (c *Client) DeleteModel(ctx context.Context, name string) (*DeleteResponse, error) {
	var resp DeleteResponse
	if err := c.do(ctx, http.MethodDelete, "/v1/models/"+name, nil, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Yield runs a server-side yield/quantile query against the named model.
func (c *Client) Yield(ctx context.Context, name string, req YieldRequest) (*YieldResponse, error) {
	var resp YieldResponse
	if err := c.do(ctx, http.MethodPost, "/v1/models/"+name+"/yield", req, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the daemon's counter snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]any, error) {
	var m map[string]any
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &m, true); err != nil {
		return nil, err
	}
	return m, nil
}
