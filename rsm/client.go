package rsm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// Serving-layer types, re-exported so callers never import internals.
type (
	// Envelope is the versioned serialized model: coefficients + basis
	// descriptor + fit provenance. It is what rsmd stores and serves.
	Envelope = core.Envelope
	// Provenance records how a stored model was fit.
	Provenance = core.Provenance
	// FitRequest submits an asynchronous server-side fit.
	FitRequest = server.FitRequest
	// FitResult is a completed fit job's outcome.
	FitResult = server.FitResult
	// JobStatus reports an async fit job's lifecycle.
	JobStatus = server.JobStatus
	// ModelInfo summarizes a stored model version.
	ModelInfo = server.ModelInfo
	// YieldRequest configures a server-side yield/quantile query.
	YieldRequest = server.YieldRequest
	// YieldResponse reports yield, moments and quantiles.
	YieldResponse = server.YieldResponse
)

// Client is a thin HTTP client for an rsmd daemon.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// do runs one JSON round trip. A non-2xx status is surfaced as an error
// carrying the server's error body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("rsm: encode %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("rsm: %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("rsm: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e server.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("rsm: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("rsm: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("rsm: decode %s %s: %w", method, path, err)
	}
	return nil
}

// Health checks daemon liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// UploadModel publishes a fitted model envelope under name and returns the
// stored version's summary.
func (c *Client) UploadModel(ctx context.Context, name string, env *Envelope) (*ModelInfo, error) {
	var buf bytes.Buffer
	if err := core.WriteEnvelope(&buf, env); err != nil {
		return nil, err
	}
	var info ModelInfo
	req := server.UploadRequest{Name: name, Model: json.RawMessage(buf.Bytes())}
	if err := c.do(ctx, http.MethodPost, "/v1/models", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Models lists the latest version of every stored model.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var resp server.ListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/models", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Models, nil
}

// SubmitFit enqueues an async fit job and returns its id.
func (c *Client) SubmitFit(ctx context.Context, req FitRequest) (string, error) {
	var resp server.FitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/fit", req, &resp); err != nil {
		return "", err
	}
	return resp.JobID, nil
}

// Job polls one fit job.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitJob polls the job every interval until it finishes (done or failed)
// or ctx expires. A failed job is returned alongside an error carrying its
// message.
func (c *Client) WaitJob(ctx context.Context, id string, interval time.Duration) (*JobStatus, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case server.JobDone:
			return st, nil
		case server.JobFailed:
			return st, fmt.Errorf("rsm: job %s failed: %s", id, st.Error)
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Predict evaluates the named model at a batch of points.
func (c *Client) Predict(ctx context.Context, name string, points [][]float64) ([]float64, error) {
	var resp server.PredictResponse
	req := server.PredictRequest{Points: points}
	if err := c.do(ctx, http.MethodPost, "/v1/models/"+name+"/predict", req, &resp); err != nil {
		return nil, err
	}
	return resp.Values, nil
}

// Yield runs a server-side yield/quantile query against the named model.
func (c *Client) Yield(ctx context.Context, name string, req YieldRequest) (*YieldResponse, error) {
	var resp YieldResponse
	if err := c.do(ctx, http.MethodPost, "/v1/models/"+name+"/yield", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the daemon's counter snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]any, error) {
	var m map[string]any
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &m); err != nil {
		return nil, err
	}
	return m, nil
}
