package rsm_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/rsm"
)

// noisyLinear draws n samples of f = 1 + 2·y0 − 3·y2 over 3 variables with
// additive Gaussian noise of the given scale.
func noisyLinear(src *rng.Source, n int, noise float64) ([][]float64, []float64) {
	points := make([][]float64, n)
	values := make([]float64, n)
	for k := range points {
		y := src.NormVec(nil, 3)
		points[k] = y
		values[k] = 1 + 2*y[0] - 3*y[2] + noise*src.NormVec(nil, 1)[0]
	}
	return points, values
}

// TestClientRefineRoundTrip drives the streaming-refit loop through the
// public client: fit a noisy parent, Refine with a cleaner batch (must
// publish v2 with refine provenance), then Refine with garbage (must be
// rejected, leaving v2 served).
func TestClientRefineRoundTrip(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	srv, err := server.New(registry.New(), server.Config{FitWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	c := rsm.NewClient(hs.URL)

	src := rng.New(11)
	pts, vals := noisyLinear(src, 40, 0.5)
	fitID, err := c.SubmitFit(ctx, rsm.FitRequest{Name: "stream", Points: pts, Values: vals, MaxLambda: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, fitID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	newPts, newVals := noisyLinear(src, 120, 0.01)
	refID, err := c.Refine(ctx, "stream", rsm.RefineRequest{Points: newPts, Values: newVals})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitRefine(ctx, refID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r := st.Refine
	if r == nil || r.Outcome != rsm.RefineImproved {
		t.Fatalf("refine result %+v, want improved", r)
	}
	if r.Model.Version != 2 || r.ParentVersion != 1 {
		t.Fatalf("published v%d from v%d, want v2 from v1", r.Model.Version, r.ParentVersion)
	}
	if r.Model.Provenance.Refine == nil || r.Model.Provenance.Refine.ParentVersion != 1 {
		t.Fatalf("refine provenance %+v, want parent v1", r.Model.Provenance.Refine)
	}

	// Garbage samples cannot beat v2: the gate rejects and v2 keeps serving.
	badPts, _ := noisyLinear(src, 6, 0)
	badVals := make([]float64, len(badPts))
	for i := range badVals {
		badVals[i] = 1000
	}
	refID2, err := c.Refine(ctx, "stream", rsm.RefineRequest{Points: badPts, Values: badVals})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.WaitRefine(ctx, refID2, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Refine == nil || st2.Refine.Outcome != rsm.RefineRejected {
		t.Fatalf("refine result %+v, want rejected", st2.Refine)
	}
	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Version != 2 {
		t.Fatalf("models %+v, want single stream@v2", models)
	}

	// Refining a model without a checkpoint is a definitive 409, surfaced
	// without retries.
	if _, err := c.UploadModel(ctx, "uploaded", envelopeFor(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Refine(ctx, "uploaded", rsm.RefineRequest{Points: badPts, Values: badVals}); err == nil ||
		!strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("refine of uploaded model: %v, want checkpoint conflict", err)
	}
}

// envelopeFor builds a minimal valid model envelope for upload tests.
func envelopeFor(t *testing.T) *rsm.Envelope {
	t.Helper()
	b := rsm.LinearBasis(3)
	return &rsm.Envelope{
		Model: &rsm.Model{M: b.Size(), Support: []int{1, 2}, Coef: []float64{2, -3}},
		Basis: b.Desc,
		Prov:  rsm.Provenance{Solver: "OMP", Lambda: 2, Metric: "f"},
	}
}
