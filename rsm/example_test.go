package rsm_test

import (
	"fmt"
	"log"
	"math"
	"sort"

	"repro/rsm"
)

// ExampleFit recovers a known 3-sparse model over a 50-variable quadratic
// dictionary (1 326 coefficients) from only 80 samples.
func ExampleFit() {
	sim, err := rsm.Circuits.Synthetic(7, 50, 2, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	dict := rsm.QuadraticBasis(50)
	train, err := rsm.Sample(sim, 80, 1)
	if err != nil {
		log.Fatal(err)
	}
	f, _ := train.Metric("f")
	model, err := rsm.Fit(dict, train.Points, f, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d of %d basis functions\n", model.NNZ(), dict.Size())
	// Output:
	// selected 3 of 1326 basis functions
}

// ExampleCrossValidate lets 4-fold cross-validation pick the sparsity level
// on a noisy problem, then validates on held-out samples.
func ExampleCrossValidate() {
	sim, err := rsm.Circuits.Synthetic(9, 40, 1, 4, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	dict := rsm.LinearBasis(40)
	train, err := rsm.Sample(sim, 160, 1)
	if err != nil {
		log.Fatal(err)
	}
	f, _ := train.Metric("f")
	cv, err := rsm.CrossValidate(rsm.NewOMP(), dict, train.Points, f, 4, 12)
	if err != nil {
		log.Fatal(err)
	}
	test, err := rsm.Sample(sim, 500, 2)
	if err != nil {
		log.Fatal(err)
	}
	fTest, _ := test.Metric("f")
	pred := cv.Model.Predict(rsm.NewDesign(dict, test.Points))
	fmt.Printf("cv chose λ=%d, held-out error below 5%%: %v\n",
		cv.BestLambda, rsm.RelativeRMSError(pred, fTest) < 0.05)
	// Output:
	// cv chose λ=4, held-out error below 5%: true
}

// ExampleMean shows the closed-form moments of a fitted orthonormal model.
func ExampleMean() {
	dict := rsm.LinearBasis(10)
	model := &rsm.Model{M: dict.Size(), Support: []int{0, 1, 2}, Coef: []float64{5, 3, 4}}
	fmt.Printf("mean %.0f sigma %.0f\n", rsm.Mean(model, dict), rsm.Std(model, dict))
	// Output:
	// mean 5 sigma 5
}

// ExampleSobolTotal attributes model variance to its input variables.
func ExampleSobolTotal() {
	dict := rsm.LinearBasis(4)
	model := &rsm.Model{M: dict.Size(), Support: []int{1, 3}, Coef: []float64{2, -1}}
	s := rsm.SobolTotal(model, dict)
	fmt.Printf("S0=%.1f S2=%.1f\n", s[0], s[2])
	// Output:
	// S0=0.8 S2=0.2
}

// ExampleNewYieldAnalyzer estimates parametric yield from a fitted model
// with a million virtual samples.
func ExampleNewYieldAnalyzer() {
	dict := rsm.LinearBasis(6)
	// f ~ N(0, 1).
	model := &rsm.Model{M: dict.Size(), Support: []int{1}, Coef: []float64{1}}
	an, err := rsm.NewYieldAnalyzer(dict, map[string]*rsm.Model{"f": model})
	if err != nil {
		log.Fatal(err)
	}
	res, err := an.Yield(rsm.NewRand(1), 1_000_000, map[string]rsm.Spec{
		"f": {Low: math.Inf(-1), High: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("yield ≈ 50%%: %v\n", math.Abs(res.Yield-0.5) < 0.01)
	// Output:
	// yield ≈ 50%: true
}

// ExampleSample demonstrates a built-in testbench end to end: the sparse
// support of the SRAM read delay is dominated by read-path devices.
func ExampleSample() {
	sim, err := rsm.Circuits.SRAM(4, 3)
	if err != nil {
		log.Fatal(err)
	}
	dict := rsm.LinearBasis(sim.Dim())
	train, err := rsm.Sample(sim, 60, 1)
	if err != nil {
		log.Fatal(err)
	}
	delay, _ := train.Metric("read_delay")
	model, err := rsm.Fit(dict, train.Points, delay, 5)
	if err != nil {
		log.Fatal(err)
	}
	sup := model.SortedSupport()
	sort.Ints(sup)
	fmt.Printf("5 of %d bases selected\n", dict.Size())
	// Output:
	// 5 of 83 bases selected
}
