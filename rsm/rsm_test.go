package rsm_test

import (
	"math"
	"testing"

	"repro/rsm"
)

func TestSolverConstructors(t *testing.T) {
	for _, tc := range []struct {
		s    rsm.Solver
		name string
	}{
		{rsm.NewOMP(), "OMP"},
		{rsm.NewLAR(), "LAR"},
		{rsm.NewLasso(), "LAR"},
		{rsm.NewSTAR(), "STAR"},
		{rsm.NewCD(), "CD"},
		{rsm.NewStOMP(), "StOMP"},
	} {
		if tc.s.Name() != tc.name {
			t.Errorf("solver name %q, want %q", tc.s.Name(), tc.name)
		}
	}
}

func TestBasisConstructors(t *testing.T) {
	if got := rsm.LinearBasis(10).Size(); got != 11 {
		t.Errorf("LinearBasis(10) size %d, want 11", got)
	}
	if got := rsm.QuadraticBasis(10).Size(); got != 66 {
		t.Errorf("QuadraticBasis(10) size %d, want 66", got)
	}
	if got := rsm.TotalDegreeBasis(3, 3).Size(); got != 20 {
		t.Errorf("TotalDegreeBasis(3,3) size %d, want 20", got)
	}
}

func TestCircuitsRegistry(t *testing.T) {
	sram, err := rsm.Circuits.SRAM(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sram.Dim() != 82 {
		t.Errorf("SRAM(4,3) Dim %d, want 82", sram.Dim())
	}
	ro, err := rsm.Circuits.RingOscillator(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ro.Metrics()) != 1 || ro.Metrics()[0] != "period" {
		t.Errorf("RO metrics %v", ro.Metrics())
	}
	if _, err := rsm.Circuits.RingOscillator(4); err == nil {
		t.Error("even stage count must error")
	}
	amp, err := rsm.Circuits.OpAmp()
	if err != nil {
		t.Fatal(err)
	}
	if amp.Dim() != 630 {
		t.Errorf("OpAmp Dim %d, want 630", amp.Dim())
	}
}

func TestEndToEndThroughFacade(t *testing.T) {
	sim, err := rsm.Circuits.Synthetic(42, 30, 1, 3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	dict := rsm.LinearBasis(30)
	train, err := rsm.Sample(sim, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := train.Metric("f")
	if err != nil {
		t.Fatal(err)
	}
	for _, solver := range []rsm.Solver{rsm.NewOMP(), rsm.NewLasso(), rsm.NewCD(), rsm.NewStOMP()} {
		cv, err := rsm.CrossValidate(solver, dict, train.Points, f, 4, 10)
		if err != nil {
			t.Errorf("%s: %v", solver.Name(), err)
			continue
		}
		test, err := rsm.Sample(sim, 400, 2)
		if err != nil {
			t.Fatal(err)
		}
		fTest, _ := test.Metric("f")
		pred := cv.Model.Predict(rsm.NewDesign(dict, test.Points))
		if e := rsm.RelativeRMSError(pred, fTest); e > 0.1 {
			t.Errorf("%s: held-out error %g too large", solver.Name(), e)
		}
	}
}

func TestFacadeMomentsConsistency(t *testing.T) {
	dict := rsm.QuadraticBasis(5)
	m := &rsm.Model{M: dict.Size(), Support: []int{0, 2}, Coef: []float64{1, 3}}
	if rsm.Mean(m, dict) != 1 {
		t.Error("Mean wrong")
	}
	if math.Abs(rsm.Std(m, dict)-3) > 1e-12 {
		t.Error("Std wrong")
	}
	s := rsm.SobolTotal(m, dict)
	if math.Abs(s[1]-1) > 1e-12 {
		t.Errorf("Sobol %v", s)
	}
}
